#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace bsis {
namespace {

TEST(Error, AssertThrowsWithLocation)
{
    try {
        BSIS_ASSERT(1 == 2);
        FAIL() << "expected throw";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("test_util.cpp"),
                  std::string::npos);
    }
}

TEST(Error, EnsureArgThrowsBadArgument)
{
    const auto f = [](int x) { BSIS_ENSURE_ARG(x > 0, "x must be positive"); };
    EXPECT_NO_THROW(f(1));
    EXPECT_THROW(f(0), BadArgument);
}

TEST(Error, EnsureDimsThrowsDimensionMismatch)
{
    const auto f = [](int n, int m) {
        BSIS_ENSURE_DIMS(n == m, "sizes differ");
    };
    EXPECT_NO_THROW(f(3, 3));
    EXPECT_THROW(f(3, 4), DimensionMismatch);
}

TEST(Error, HierarchyRootsAtError)
{
    EXPECT_THROW(throw NumericalBreakdown("here", "pivot"), Error);
    EXPECT_THROW(throw ParseError("here", "bad line"), Error);
}

TEST(Timer, MeasuresElapsedTime)
{
    Timer timer;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const double s = timer.seconds();
    EXPECT_GE(s, 0.009);
    EXPECT_LT(s, 1.0);
    EXPECT_NEAR(timer.milliseconds(), timer.seconds() * 1e3,
                timer.seconds() * 10);
}

TEST(Timer, ResetRestartsTheClock)
{
    Timer timer;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    timer.reset();
    EXPECT_LT(timer.seconds(), 0.005);
}

TEST(StopWatch, AccumulatesLaps)
{
    StopWatch watch;
    for (int i = 0; i < 3; ++i) {
        watch.start();
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        watch.stop();
    }
    EXPECT_EQ(watch.laps(), 3);
    EXPECT_GE(watch.total_seconds(), 0.005);
    EXPECT_NEAR(watch.mean_seconds(), watch.total_seconds() / 3, 1e-12);
}

TEST(StopWatch, StopWithoutStartIsIgnored)
{
    StopWatch watch;
    watch.stop();
    EXPECT_EQ(watch.laps(), 0);
    EXPECT_EQ(watch.total_seconds(), 0.0);
}

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a(), b());
    }
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        equal += a() == b();
    }
    EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-2.0, 3.0);
        ASSERT_GE(u, -2.0);
        ASSERT_LT(u, 3.0);
    }
}

TEST(Rng, UniformIntUnbiasedSmallRange)
{
    Rng rng(13);
    int counts[5] = {};
    constexpr int n = 50000;
    for (int i = 0; i < n; ++i) {
        ++counts[rng.uniform_int(5)];
    }
    for (const int c : counts) {
        EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.02);
    }
}

TEST(Table, PrintsAlignedColumns)
{
    Table t({"name", "value"});
    t.new_row().add("alpha").add(1.5);
    t.new_row().add("b").add(std::int64_t{42});
    std::ostringstream os;
    t.print(os);
    const auto text = os.str();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("42"), std::string::npos);
    EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(Table, CsvOutputHasHeaderAndRows)
{
    Table t({"a", "b"});
    t.new_row().add(1).add(2);
    std::ostringstream os;
    t.print_csv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RejectsTooManyCells)
{
    Table t({"only"});
    t.new_row().add("x");
    EXPECT_THROW(t.add("overflow"), BadArgument);
}

TEST(Table, RejectsAddBeforeNewRow)
{
    Table t({"a"});
    EXPECT_THROW(t.add("x"), BadArgument);
}

TEST(Table, RejectsEmptyHeader)
{
    EXPECT_THROW(Table({}), BadArgument);
}

}  // namespace
}  // namespace bsis
