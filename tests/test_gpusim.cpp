#include <gtest/gtest.h>

#include <vector>

#include "core/storage_config.hpp"
#include "core/work_profile.hpp"
#include "gpusim/cache.hpp"
#include "gpusim/cost_model.hpp"
#include "gpusim/device.hpp"
#include "gpusim/scheduler.hpp"
#include "gpusim/simt_kernels.hpp"
#include "matrix/conversions.hpp"
#include "matrix/stencil.hpp"

namespace bsis::gpusim {
namespace {

TEST(DeviceSpecs, TableOneNumbers)
{
    // Table I of the paper.
    EXPECT_DOUBLE_EQ(v100().peak_fp64_tflops, 7.8);
    EXPECT_DOUBLE_EQ(v100().mem_bw_gbps, 990);
    EXPECT_EQ(v100().num_cu, 80);
    EXPECT_DOUBLE_EQ(a100().peak_fp64_tflops, 9.7);
    EXPECT_DOUBLE_EQ(a100().mem_bw_gbps, 1555);
    EXPECT_EQ(a100().num_cu, 108);
    EXPECT_DOUBLE_EQ(mi100().peak_fp64_tflops, 11.5);
    EXPECT_EQ(mi100().num_cu, 120);
    EXPECT_EQ(mi100().warp_size, 64);
    EXPECT_EQ(v100().warp_size, 32);
    EXPECT_EQ(skylake_node().total_cores, 40);
    EXPECT_EQ(skylake_node().cores_used, 38);
}

TEST(DeviceSpecs, ProjectionDevicesAreNewerGenerations)
{
    int count = 0;
    const auto* proj = projection_gpus(count);
    ASSERT_EQ(count, 2);
    // H100 dominates A100 on every headline number.
    EXPECT_GT(h100().peak_fp64_tflops, a100().peak_fp64_tflops);
    EXPECT_GT(h100().mem_bw_gbps, a100().mem_bw_gbps);
    EXPECT_GT(h100().l2_mib, a100().l2_mib);
    // MI250X GCD vs MI100: more flops and bandwidth, same CDNA wave width.
    EXPECT_GT(mi250x_gcd().peak_fp64_tflops, mi100().peak_fp64_tflops);
    EXPECT_EQ(mi250x_gcd().warp_size, 64);
    EXPECT_EQ(proj[0].name, "H100");
    EXPECT_EQ(proj[1].name, "MI250X-GCD");
}

TEST(DeviceSpecs, SchedulingPoliciesMatchObservedBehavior)
{
    EXPECT_EQ(mi100().scheduling, SchedulingPolicy::wave_quantized);
    EXPECT_EQ(v100().scheduling, SchedulingPolicy::greedy_dynamic);
    EXPECT_EQ(a100().scheduling, SchedulingPolicy::greedy_dynamic);
}

TEST(Cache, HitsOnRepeatedAccess)
{
    Cache cache(1024, 128, 4);
    EXPECT_FALSE(cache.access(0));
    EXPECT_TRUE(cache.access(0));
    EXPECT_TRUE(cache.access(64));  // same 128 B line
    EXPECT_FALSE(cache.access(128));
    EXPECT_EQ(cache.stats().accesses, 4);
    EXPECT_EQ(cache.stats().hits, 2);
}

TEST(Cache, LruEvictionWithinSet)
{
    // 2 sets x 2 ways x 128 B lines = 512 B. Addresses 0, 256, 512 map to
    // set 0; the third access evicts the LRU line (0).
    Cache cache(512, 128, 2);
    cache.access(0);
    cache.access(256);
    cache.access(512);
    EXPECT_FALSE(cache.access(0));   // evicted
    EXPECT_TRUE(cache.access(512));  // still resident
}

TEST(Cache, InvalidateDropsContentKeepsStats)
{
    Cache cache(1024, 128, 4);
    cache.access(0);
    cache.invalidate();
    EXPECT_FALSE(cache.access(0));
    EXPECT_EQ(cache.stats().accesses, 2);
}

TEST(Coalescing, ConsecutiveDoublesFormMinimalSegments)
{
    std::vector<std::uint64_t> addrs;
    for (int lane = 0; lane < 32; ++lane) {
        addrs.push_back(lane * 8);
    }
    std::vector<std::uint64_t> segs;
    coalesce(addrs, 8, 128, segs);
    EXPECT_EQ(segs.size(), 2u);  // 256 bytes = 2 x 128 B transactions
}

TEST(Coalescing, ScatteredAccessesExplode)
{
    std::vector<std::uint64_t> addrs;
    for (int lane = 0; lane < 32; ++lane) {
        addrs.push_back(static_cast<std::uint64_t>(lane) * 4096);
    }
    std::vector<std::uint64_t> segs;
    coalesce(addrs, 8, 128, segs);
    EXPECT_EQ(segs.size(), 32u);
}

TEST(Coalescing, StraddlingAccessTouchesTwoSegments)
{
    std::vector<std::uint64_t> addrs{124};  // 8 bytes crossing 128
    std::vector<std::uint64_t> segs;
    coalesce(addrs, 8, 128, segs);
    EXPECT_EQ(segs.size(), 2u);
}

TEST(Scheduler, WaveQuantizedStepsAtSlotMultiples)
{
    // Uniform 1 ms blocks, 120 slots: the makespan is constant within a
    // wave and jumps exactly at multiples of 120 (the paper's MI100
    // observation).
    const auto time_for = [](int nbatch) {
        std::vector<double> durations(static_cast<std::size_t>(nbatch),
                                      1e-3);
        return schedule_blocks(durations, 120,
                               SchedulingPolicy::wave_quantized);
    };
    EXPECT_DOUBLE_EQ(time_for(1).makespan_seconds, 1e-3);
    EXPECT_DOUBLE_EQ(time_for(120).makespan_seconds, 1e-3);
    EXPECT_DOUBLE_EQ(time_for(121).makespan_seconds, 2e-3);
    EXPECT_DOUBLE_EQ(time_for(240).makespan_seconds, 2e-3);
    EXPECT_EQ(time_for(241).num_waves, 3);
}

TEST(Scheduler, GreedyDynamicIsSmoothAcrossSlotBoundary)
{
    // With mixed durations, greedy backfills: adding one more block after
    // a slot boundary grows the makespan by (at most) one SHORT block.
    std::vector<double> durations;
    for (int i = 0; i < 80; ++i) {
        durations.push_back(i % 2 == 0 ? 2e-3 : 0.5e-3);
    }
    const auto base =
        schedule_blocks(durations, 80, SchedulingPolicy::greedy_dynamic);
    durations.push_back(0.5e-3);
    const auto plus =
        schedule_blocks(durations, 80, SchedulingPolicy::greedy_dynamic);
    EXPECT_LE(plus.makespan_seconds, base.makespan_seconds + 0.5e-3 + 1e-12);
    // Wave-quantized would jump by a FULL long block instead.
    const auto wave =
        schedule_blocks(durations, 80, SchedulingPolicy::wave_quantized);
    EXPECT_GT(wave.makespan_seconds, plus.makespan_seconds);
}

TEST(Scheduler, GreedyMakespanBounds)
{
    std::vector<double> durations{3e-3, 1e-3, 1e-3, 1e-3, 2e-3, 1e-3};
    const auto result =
        schedule_blocks(durations, 2, SchedulingPolicy::greedy_dynamic);
    double total = 0;
    double longest = 0;
    for (const auto d : durations) {
        total += d;
        longest = std::max(longest, d);
    }
    EXPECT_GE(result.makespan_seconds, total / 2 - 1e-12);
    EXPECT_GE(result.makespan_seconds, longest);
    EXPECT_LE(result.makespan_seconds, total);
}

TEST(Scheduler, EmptyAndInvalidInputs)
{
    EXPECT_DOUBLE_EQ(
        schedule_blocks({}, 4, SchedulingPolicy::greedy_dynamic)
            .makespan_seconds,
        0.0);
    EXPECT_THROW(
        schedule_blocks({1e-3}, 0, SchedulingPolicy::greedy_dynamic),
        BadArgument);
}

class CostModelFixture : public ::testing::Test {
protected:
    SystemShape shape_{992, 8928, 9};  // the paper's ELL-stored matrix

    StorageConfig config_for(const DeviceSpec& d) const
    {
        return configure_storage(
            bicgstab_slots(1), shape_.rows, d.warp_size, sizeof(real_type),
            static_cast<size_type>(d.max_shared_kib_per_block * 1024));
    }

    BlockCost cost(const DeviceSpec& d, BatchFormat fmt,
                   int blocks_per_cu = 2) const
    {
        return block_cost(d, shape_, fmt, 992, config_for(d),
                          work_profile(SolverType::bicgstab,
                                       PrecondType::jacobi),
                          blocks_per_cu);
    }
};

TEST_F(CostModelFixture, EllSpmvFasterThanCsrOnEveryGpu)
{
    for (const auto* d : {&v100(), &a100(), &mi100()}) {
        EXPECT_LT(cost(*d, BatchFormat::ell).spmv_us,
                  cost(*d, BatchFormat::csr).spmv_us)
            << d->name;
    }
}

TEST_F(CostModelFixture, CsrPenaltyWorseOnWiderWavefronts)
{
    // The paper attributes the larger ELL speedup on the MI100 to its
    // 64-wide wavefronts leaving more lanes idle at 9 nnz/row.
    const double nv_ratio = cost(v100(), BatchFormat::csr).spmv_us /
                            cost(v100(), BatchFormat::ell).spmv_us;
    const double amd_ratio = cost(mi100(), BatchFormat::csr, 1).spmv_us /
                             cost(mi100(), BatchFormat::ell, 1).spmv_us;
    EXPECT_GT(amd_ratio, nv_ratio);
}

TEST_F(CostModelFixture, IterationTimeScalesWithIterations)
{
    const auto c = cost(a100(), BatchFormat::ell);
    EXPECT_GT(c.per_iteration_us, 0);
    EXPECT_NEAR(c.block_us(30) - c.block_us(20), 10 * c.per_iteration_us,
                1e-9);
}

TEST_F(CostModelFixture, MoreBlocksPerCuSlowEachBlock)
{
    const auto c1 = cost(a100(), BatchFormat::ell, 1);
    const auto c2 = cost(a100(), BatchFormat::ell, 2);
    EXPECT_GT(c2.per_iteration_us, c1.per_iteration_us);
    // But never more than 2x (latency terms are shared).
    EXPECT_LT(c2.per_iteration_us, 2 * c1.per_iteration_us);
}

TEST_F(CostModelFixture, DirectQrCostsMoreThanManyBicgstabIterations)
{
    // Fig. 6: the batched QR is 10-30x slower than batched BiCGStab.
    const double qr = direct_qr_system_seconds(v100(), 992, 33, 33);
    const auto bicgstab = cost(v100(), BatchFormat::csr);
    // Compare per-device-slot throughput: QR time vs a 20-iteration solve
    // spread over the V100's 160 resident blocks.
    const double solve_slot_time = bicgstab.block_us(20) * 1e-6 / 160;
    EXPECT_GT(qr, 8 * solve_slot_time);
}

TEST(CostModel, CpuGbsvMatchesFlopModel)
{
    const auto& cpu = skylake_node();
    const double t = cpu_gbsv_system_seconds(cpu, 992, 33, 33);
    // ~4.5 MFlop at 10 GFlop/s effective: ~0.45 ms.
    EXPECT_GT(t, 1e-4);
    EXPECT_LT(t, 2e-3);
}

TEST(CostModel, TridiagonalSpecialistsScaleSensibly)
{
    const auto& d = v100();
    // Thomas is latency-floored at small batch; throughput takes over.
    const double small = thomas_batched_seconds(d, 992, 16);
    const double large = thomas_batched_seconds(d, 992, 100000);
    EXPECT_GT(large, small);
    EXPECT_NEAR(small, thomas_batched_seconds(d, 992, 1), 1e-9);
    // Cyclic reduction pays log-depth latency but less serial time.
    const double cr_small = cyclic_reduction_batched_seconds(d, 992, 16);
    EXPECT_GT(cr_small, 0);
    EXPECT_GT(cyclic_reduction_batched_seconds(d, 992, 100000), cr_small);
}

TEST(CostModel, DenseLuFarSlowerThanBandedApproaches)
{
    // Section II: dense solvers on the GPU lose at n = 992.
    const auto& d = v100();
    const double dense = dense_lu_batched_seconds(d, 992, 960);
    const double cpu_banded =
        cpu_gbsv_system_seconds(skylake_node(), 992, 33, 33) * 960 / 38;
    EXPECT_GT(dense, cpu_banded);
}

TEST(CostModel, TransferTimesScaleWithBytes)
{
    const double t1 = transfer_seconds(v100(), 1e6);
    const double t2 = transfer_seconds(v100(), 2e6);
    EXPECT_GT(t2, t1);
    EXPECT_NEAR(t2 - t1, 1e6 / (v100().link_bw_gbps * 1e9), 1e-9);
}

class SimtTraceFixture : public ::testing::Test {
protected:
    SimtTraceFixture()
        : pattern_(make_stencil_pattern(32, 31, StencilKind::nine_point)),
          csr_(1, pattern_.rows(), pattern_.row_ptrs, pattern_.col_idxs),
          ell_(to_ell(csr_))
    {}

    StencilPattern pattern_;
    BatchCsr<real_type> csr_;
    BatchEll<real_type> ell_;
};

TEST_F(SimtTraceFixture, EllSpmvNearFullWarpUtilization)
{
    MemoryHierarchy mem(128 * 1024, 6 * 1024 * 1024);
    BlockTracer tracer(992, 32, &mem);
    const auto map = AddressMap::for_system(0, 992, 8928, 0);
    trace_spmv_ell(tracer, map, 992, 9, ell_.col_idxs(), shared_space,
                   shared_space);
    // Table II: ELL warp use ~98%.
    EXPECT_GT(tracer.counters().warp_utilization(32), 0.9);
}

TEST_F(SimtTraceFixture, CsrSpmvUnderutilizesWarps)
{
    MemoryHierarchy mem(128 * 1024, 6 * 1024 * 1024);
    BlockTracer tracer(992, 32, &mem);
    const auto map = AddressMap::for_system(0, 992, 8928, 0);
    trace_spmv_csr(tracer, map, pattern_.row_ptrs, pattern_.col_idxs,
                   shared_space, shared_space);
    // 9 active lanes of 32 in the load phase: utilization far below ELL.
    EXPECT_LT(tracer.counters().warp_utilization(32), 0.6);
}

TEST_F(SimtTraceFixture, CsrWorseOnSixtyFourWideWavefronts)
{
    MemoryHierarchy mem32(128 * 1024, 6 * 1024 * 1024);
    MemoryHierarchy mem64(80 * 1024, 8 * 1024 * 1024);
    BlockTracer t32(992, 32, &mem32);
    BlockTracer t64(1024, 64, &mem64);
    const auto map = AddressMap::for_system(0, 992, 8928, 0);
    trace_spmv_csr(t32, map, pattern_.row_ptrs, pattern_.col_idxs,
                   shared_space, shared_space);
    trace_spmv_csr(t64, map, pattern_.row_ptrs, pattern_.col_idxs,
                   shared_space, shared_space);
    EXPECT_LT(t64.counters().warp_utilization(64),
              t32.counters().warp_utilization(32));
}

TEST_F(SimtTraceFixture, RepeatedSpmvHitsInL1)
{
    // The matrix fits in a V100-sized L1 after the first iteration.
    MemoryHierarchy mem(128 * 1024, 6 * 1024 * 1024);
    BlockTracer tracer(992, 32, &mem);
    const auto map = AddressMap::for_system(0, 992, 8928, 0);
    trace_spmv_ell(tracer, map, 992, 9, ell_.col_idxs(), shared_space,
                   shared_space);
    const auto cold_hits = mem.l1_stats().hits;
    const auto cold_accesses = mem.l1_stats().accesses;
    trace_spmv_ell(tracer, map, 992, 9, ell_.col_idxs(), shared_space,
                   shared_space);
    const double warm_rate =
        static_cast<double>(mem.l1_stats().hits - cold_hits) /
        static_cast<double>(mem.l1_stats().accesses - cold_accesses);
    EXPECT_GT(warm_rate, 0.95);
}

TEST_F(SimtTraceFixture, FullBicgstabTraceMatchesTableTwoShape)
{
    // Warp utilization of the whole fused solve: high for ELL, lower for
    // CSR (Table II of the paper).
    const auto config = configure_storage(
        bicgstab_slots(1), 992, 32, sizeof(real_type), 48 * 1024);
    const auto map = AddressMap::for_system(
        0, 992, 8928, config.num_global);
    MemoryHierarchy mem_ell(128 * 1024, 6 * 1024 * 1024);
    BlockTracer ell_tracer(992, 32, &mem_ell);
    trace_bicgstab(ell_tracer, map, TracedFormat::ell, pattern_.row_ptrs,
                   pattern_.col_idxs, ell_.col_idxs(), 992, 9, 10, config);
    MemoryHierarchy mem_csr(128 * 1024, 6 * 1024 * 1024);
    BlockTracer csr_tracer(1024, 32, &mem_csr);
    trace_bicgstab(csr_tracer, map, TracedFormat::csr, pattern_.row_ptrs,
                   pattern_.col_idxs, ell_.col_idxs(), 992, 9, 10, config);

    const double ell_util = ell_tracer.counters().warp_utilization(32);
    const double csr_util = csr_tracer.counters().warp_utilization(32);
    EXPECT_GT(ell_util, 0.9);
    EXPECT_LT(csr_util, ell_util);
    EXPECT_GT(csr_util, 0.15);
    // Both traces really hit the cache hierarchy.
    EXPECT_GT(mem_ell.l1_stats().accesses, 0);
    EXPECT_GT(mem_ell.l1_stats().hit_rate(), 0.2);
    EXPECT_GT(mem_csr.l2_stats().accesses, 0);
}

TEST_F(SimtTraceFixture, MultiThreadPerRowHelpsWideRows)
{
    // Build a WIDE-row ELL pattern (64 nnz/row, 128 rows): one thread per
    // row serializes 64 slot rounds, four threads per row cut the
    // dependent rounds ~4x at nearly the same utilization (Section IV-E's
    // "multiple threads working on one row").
    const index_type rows = 128;
    const index_type width = 64;
    std::vector<index_type> cols(static_cast<std::size_t>(rows) * width);
    for (index_type k = 0; k < width; ++k) {
        for (index_type r = 0; r < rows; ++r) {
            cols[static_cast<std::size_t>(k) * rows + r] =
                (r + k) % rows;
        }
    }
    const auto map = AddressMap::for_system(0, rows, rows * width, 0);

    MemoryHierarchy mem1(128 * 1024, 6 * 1024 * 1024);
    BlockTracer single(rows, 32, &mem1);
    trace_spmv_ell(single, map, rows, width, cols, shared_space,
                   shared_space);
    MemoryHierarchy mem4(128 * 1024, 6 * 1024 * 1024);
    BlockTracer multi(rows, 32, &mem4);
    trace_spmv_ell_multi(multi, map, rows, width, cols, 4, shared_space,
                         shared_space);

    // Same work, fewer dependent warp rounds per row chain.
    EXPECT_GT(multi.counters().warp_utilization(32), 0.5);
    // The multi-thread variant issues fewer instructions per covered row
    // chain: compare instructions normalized by parallelism (1 row/lane
    // vs 8 rows/warp): total instruction count is similar, but the
    // DEPENDENT chain per row shrinks by ~threads_per_row. Proxy check:
    // the multi variant's instruction count stays within 2x of single
    // while covering each row with 4 lanes.
    EXPECT_LT(multi.counters().warp_instructions,
              2 * single.counters().warp_instructions);
    EXPECT_EQ(multi.counters().flops >= single.counters().flops, true);
}

TEST_F(SimtTraceFixture, MultiThreadPerRowValidatesGeometry)
{
    MemoryHierarchy mem(128 * 1024, 6 * 1024 * 1024);
    BlockTracer tracer(992, 32, &mem);
    const auto map = AddressMap::for_system(0, 992, 8928, 0);
    EXPECT_THROW(trace_spmv_ell_multi(tracer, map, 992, 9, ell_.col_idxs(),
                                      5, shared_space, shared_space),
                 BadArgument);
}

TEST(AddressMapTest, SharedPatternSameAcrossSystems)
{
    const auto m0 = AddressMap::for_system(0, 992, 8928, 3);
    const auto m1 = AddressMap::for_system(1, 992, 8928, 3);
    EXPECT_EQ(m0.col_idxs, m1.col_idxs);
    EXPECT_EQ(m0.row_ptrs, m1.row_ptrs);
    EXPECT_NE(m0.values, m1.values);
    EXPECT_NE(m0.b, m1.b);
    EXPECT_NE(m0.spill_vec(0), m1.spill_vec(0));
    EXPECT_EQ(m0.spill_vec(1) - m0.spill_vec(0), 992 * 8);
}

}  // namespace
}  // namespace bsis::gpusim
