// Banded LU factorization and solve with partial pivoting -- the algorithm
// of LAPACK's dgbtrf/dgbtrs/dgbsv, which is the paper's CPU baseline
// (Section II-A: "Production simulations currently employ the LAPACK banded
// solver dgbsv on the CPU").
//
// The factorization works in the LAPACK general-band layout of BandedView
// (ldab = 2*kl + ku + 1): partial pivoting introduces fill in up to kl
// additional super-diagonals, which the layout reserves space for.
#pragma once

#include <vector>

#include "matrix/batch_banded.hpp"
#include "util/types.hpp"

namespace bsis::lapack {

/// In-place banded LU with partial pivoting (dgbtrf). `ipiv` receives the
/// pivot row chosen at each column (0-based, ipiv[j] >= j).
/// Throws NumericalBreakdown on an exactly zero pivot.
void gbtrf(BandedView<real_type> a, std::vector<index_type>& ipiv);

/// Solves A x = b using a factorization produced by gbtrf (dgbtrs);
/// b is overwritten with the solution.
void gbtrs(const BandedView<real_type>& a,
           const std::vector<index_type>& ipiv, VecView<real_type> b);

/// Convenience driver: factorize + solve (dgbsv). Destroys `a`.
void gbsv(BandedView<real_type> a, VecView<real_type> b);

/// Floating-point operations of one gbtrf + gbtrs on an (n, kl, ku) system.
/// Used by the Skylake node cost model.
double gbsv_flops(index_type n, index_type kl, index_type ku);

/// Batched driver: factorizes and solves every entry, one system per
/// OpenMP task (mirroring the proxy app's Kokkos parallelization over
/// systems). `x` enters holding the right-hand sides and exits holding the
/// solutions. The band storage is destroyed.
void batch_gbsv(BatchBanded<real_type>& a, BatchVector<real_type>& x);

}  // namespace bsis::lapack
