#include "gpusim/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "lapack/banded_lu.hpp"
#include "lapack/banded_qr.hpp"
#include "lapack/tridiag.hpp"
#include "util/error.hpp"

namespace bsis::gpusim {

namespace {

/// Serialized issue/latency cost of one dependent warp-instruction round
/// inside a block (calibrated: ~56 ns covers the partially-unhidden load
/// latency of each CSR row's gather+reduce chain; see EXPERIMENTS.md,
/// "Model calibration").
constexpr double warp_issue_us = 0.056;

constexpr double bytes_per_value = sizeof(real_type);
constexpr double bytes_per_index = sizeof(index_type);
constexpr double coalesce_bytes = 128.0;

double ceil_div(double a, double b) { return std::ceil(a / b); }

/// Transaction amplification of a warp load touching `bytes` consecutive
/// bytes per row segment: short rows waste most of each 128 B transaction
/// (the CSR value/index loads at 9 nnz per row), long coalesced runs
/// approach 1.
double amplification(double contiguous_bytes)
{
    const double segments =
        ceil_div(contiguous_bytes, coalesce_bytes) + 0.5;  // misalignment
    return std::max(1.0, segments * coalesce_bytes / contiguous_bytes);
}

}  // namespace

BlockCost block_cost(const DeviceSpec& device, const SystemShape& shape,
                     BatchFormat format, index_type block_threads,
                     const StorageConfig& config,
                     const SolverWorkProfile& work, int blocks_per_cu)
{
    BSIS_ENSURE_ARG(blocks_per_cu >= 1, "need at least one block per CU");
    const double c = blocks_per_cu;
    const double warp = device.warp_size;
    const double warps_in_block = std::max(1.0, block_threads / warp);
    const double n = shape.rows;
    const double nnz = shape.nnz;
    const double nnz_row = std::max<index_type>(shape.nnz_per_row, 1);

    // Per-block service rates (GB/s and GFlop/s), timeshared between the
    // blocks co-resident on a CU.
    const double dram_cu = device.per_cu_dram_gbps();
    const double l1_rate = dram_cu * device.l1_bw_ratio / c;
    const double l2_rate = dram_cu * device.l2_bw_ratio / c;
    const double shared_rate = l1_rate;
    const double flop_rate = device.per_cu_gflops() / c;

    // Cache residency of the global working set (matrix + rhs + spilled
    // vectors): the shared-memory carve-out shrinks the L1, and the
    // device-wide L2 is split among ALL resident blocks -- whatever misses
    // both levels streams from DRAM at the block's bandwidth share. (The
    // A100's 40 MiB L2 holding every block's working set vs the V100's
    // 6 MiB is exactly the contrast of the paper's Table II.)
    const int num_spilled = config.num_global;
    const double working_set =
        nnz * (bytes_per_value + bytes_per_index) +
        n * bytes_per_value * (1.0 + num_spilled);
    const double l1_capacity =
        std::max(0.0, device.l1_shared_kib_per_cu * 1024.0 -
                          static_cast<double>(config.shared_bytes) * c) /
        c;
    const double l1_resident = std::min(1.0, l1_capacity / working_set);
    const double l2_capacity_per_block =
        device.l2_mib * 1024.0 * 1024.0 / (device.num_cu * c);
    const double l2_resident =
        std::min(1.0, l2_capacity_per_block / working_set);
    const double dram_rate = dram_cu / c;
    const double global_rate =
        l1_resident * l1_rate +
        (1.0 - l1_resident) *
            (l2_resident * l2_rate + (1.0 - l2_resident) * dram_rate);

    const double frac_shared =
        config.slots.empty()
            ? 0.0
            : static_cast<double>(config.num_shared) /
                  static_cast<double>(config.slots.size());
    const double vec_rate =
        frac_shared * shared_rate + (1.0 - frac_shared) * global_rate;

    BlockCost cost;

    // --- SpMV ---
    double instr_rounds = 0;
    double lane_util = 1.0;
    double value_amp = 1.0;
    if (format == BatchFormat::csr) {
        // Warp-per-row: each warp serially walks rows/warps_in_block rows;
        // each row costs the element loads plus a shuffle reduction tree.
        const double rows_per_warp = ceil_div(n, warps_in_block);
        const double chunks = ceil_div(nnz_row, warp);
        const double reduce_stages =
            std::ceil(std::log2(std::min(nnz_row, warp))) + 1.0;
        instr_rounds = rows_per_warp * (chunks * 3.0 + reduce_stages + 2.0);
        lane_util = std::min(1.0, nnz_row / warp);
        value_amp = amplification(nnz_row * bytes_per_value);
    } else {
        // Thread-per-row: nnz_per_row coalesced rounds over the rows.
        const double chunks = ceil_div(n, block_threads);
        instr_rounds = nnz_row * chunks * 3.0 + chunks;
        const double padded = ceil_div(n, warp) * warp;
        lane_util = n / padded;
        value_amp = 1.0;
    }
    const double spmv_bytes =
        nnz * bytes_per_value * value_amp + nnz * bytes_per_index +
        n * bytes_per_value * 1.5;  // x gathers + y, partially L1-served
    const double spmv_flops = 2.0 * nnz;
    const double t_spmv_mem = spmv_bytes / (global_rate * 1e3);  // us
    const double t_spmv_flop =
        spmv_flops / (flop_rate * lane_util * 1e3);
    cost.spmv_us = instr_rounds * warp_issue_us +
                   std::max(t_spmv_mem, t_spmv_flop) +
                   device.barrier_latency_us;

    // Exposed latency of touching spilled (global) vectors: one
    // dependent pass per operand that is not in shared memory.
    const double spill_penalty =
        (1.0 - frac_shared) * device.spill_latency_us;

    // --- block-wide reduction (dot / norm) ---
    const double dot_bytes = 2.0 * n * bytes_per_value;
    cost.dot_us = dot_bytes / (vec_rate * 1e3) +
                  device.reduction_latency_us + spill_penalty;

    // --- streaming vector update ---
    const double axpy_bytes = 3.0 * n * bytes_per_value;
    const double axpy_flops = 2.0 * n;
    cost.axpy_us =
        std::max(axpy_bytes / (vec_rate * 1e3),
                 axpy_flops / (flop_rate * device.stream_efficiency * 1e3)) +
        ceil_div(n, block_threads) * 3.0 * warp_issue_us +
        device.barrier_latency_us + 1.5 * spill_penalty;

    // --- preconditioner application (scalar Jacobi = one elementwise op) --
    cost.precond_us = cost.axpy_us;

    cost.setup_us = work.setup_spmvs * cost.spmv_us +
                    work.setup_dots * cost.dot_us +
                    work.setup_axpys * cost.axpy_us +
                    cost.precond_us;  // Jacobi generation

    cost.iter_spmv_us = work.spmv_per_iter * cost.spmv_us +
                        work.precond_per_iter * cost.precond_us;
    if (work.has_fused_shape()) {
        // Fused kernel: price SWEEPS, not BLAS calls. A norm fused into an
        // update sweep reuses that sweep's traffic and pays only the
        // cross-warp combine latency. Extra reduction RESULTS sharing a
        // sweep that already combines (the dual-dot's second result, the
        // pipelined dot4's extra outputs) cost a fraction of a combine
        // round -- their partials ride the same scratch publish/barrier
        // sequence; extra reduction VECTORS (a third operand streamed by a
        // multi-output sweep) cost that vector's stream time; a dot fused
        // into a NON-reduction sweep (pipelined CG's r.z on the
        // preconditioner sweep) adds a full combine round there.
        const double combine_us =
            device.reduction_latency_us + spill_penalty;
        const double vec_stream_us = n * bytes_per_value / (vec_rate * 1e3);
        cost.iter_update_us =
            (work.fused_update_sweeps + work.fused_norm_update_sweeps) *
                cost.axpy_us +
            work.fused_extra_combines * combine_us;
        cost.iter_reduction_us =
            work.fused_dot_sweeps * cost.dot_us +
            work.fused_extra_dot_vectors * vec_stream_us +
            work.fused_norm_update_sweeps * combine_us +
            work.fused_extra_dots * 0.25 * combine_us;
    } else {
        cost.iter_reduction_us = work.dots_per_iter * cost.dot_us;
        cost.iter_update_us = work.axpys_per_iter * cost.axpy_us;
    }
    cost.per_iteration_us =
        cost.iter_spmv_us + cost.iter_reduction_us + cost.iter_update_us;
    return cost;
}

double direct_qr_system_seconds(const DeviceSpec& device, index_type rows,
                                index_type kl, index_type ku)
{
    const double flops = lapack::gbqr_flops(rows, kl, ku);
    const double device_flops_per_s =
        device.peak_fp64_tflops * 1e12 * device.direct_qr_efficiency;
    return flops / device_flops_per_s;
}

double cpu_gbsv_system_seconds(const CpuSpec& cpu, index_type rows,
                               index_type kl, index_type ku)
{
    const double flops = lapack::gbsv_flops(rows, kl, ku);
    const double core_flops_per_s = cpu.peak_fp64_gflops_per_core * 1e9 *
                                    cpu.banded_lu_efficiency;
    return flops / core_flops_per_s;
}

double transfer_seconds(const DeviceSpec& device, double bytes)
{
    return device.link_latency_us * 1e-6 +
           bytes / (device.link_bw_gbps * 1e9);
}

double thomas_batched_seconds(const DeviceSpec& device, index_type n,
                              size_type num_batch)
{
    // Serial floor: each thread walks a 2n-step dependent recurrence; the
    // per-step latency (division + fma) is only hidden ACROSS systems.
    const double dep_step_us = 0.020;  // ~division latency
    const double serial_floor = 2.0 * n * dep_step_us * 1e-6;
    // Throughput ceiling: interleaved storage streams the three diagonals
    // and rhs once; effective rate limited by memory.
    const double bytes = static_cast<double>(num_batch) * n * 4.0 *
                         sizeof(real_type) * 2.0;  // read + write traffic
    const double throughput = bytes / (device.mem_bw_gbps * 1e9 * 0.6);
    return device.launch_overhead_us * 1e-6 +
           std::max(serial_floor, throughput);
}

double cyclic_reduction_batched_seconds(const DeviceSpec& device,
                                        index_type n, size_type num_batch)
{
    // 2 * ceil(log2 n) dependent levels, each a device-wide sweep.
    const double levels =
        2.0 * std::ceil(std::log2(std::max<index_type>(n, 2)));
    const double level_latency = device.launch_overhead_us * 1e-6;
    const double flops = static_cast<double>(num_batch) *
                         lapack::cyclic_reduction_flops(n);
    const double work =
        flops / (device.peak_fp64_tflops * 1e12 * 0.04);
    return levels * level_latency + work;
}

double dense_lu_batched_seconds(const DeviceSpec& device, index_type n,
                                size_type num_batch)
{
    // Batched getrf+getrs: (2/3) n^3 + 2 n^2 flops per system at the
    // throughput MAGMA-class batched LU reaches for ~1000-row systems.
    const double flops =
        static_cast<double>(num_batch) *
        (2.0 / 3.0 * static_cast<double>(n) * n * n +
         2.0 * static_cast<double>(n) * n);
    return device.launch_overhead_us * 1e-6 +
           flops / (device.peak_fp64_tflops * 1e12 * 0.25);
}

}  // namespace bsis::gpusim
