// Phase taxonomy and per-thread phase-time accumulation (the measurement
// half of the performance-attribution layer; see obs/attribution.hpp for
// the modeled half).
//
// Every `obs::traced` span in the solver kernels names one of a fixed,
// small set of phase kinds -- an SpMV sweep, a preconditioner
// application, a block-wide reduction, a streaming vector update. The
// accumulator tallies wall nanoseconds, thread-CPU nanoseconds and call
// counts per kind into
// per-thread cache-line-aligned shards of relaxed atomics, so the hot
// loops never contend and never take a lock; totals() sums the shards.
// Recording is gated by `obs::metrics_enabled()` (see obs/telemetry.hpp):
// disabled cost is one relaxed load per span.
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/sharding.hpp"

namespace bsis::obs {

/// Kernel phase kinds, matching the span names used since the telemetry
/// PR ("spmv", "precond_apply", "reduction", "update"). `other` collects
/// spans that do not map onto the ledger (assembly, logging).
enum class Phase : int {
    spmv = 0,
    precond = 1,
    reduction = 2,
    update = 3,
    other = 4,
};

inline constexpr int phase_count = 5;

/// Canonical span name of a phase (static storage; safe as a TraceEvent
/// name).
inline const char* phase_name(Phase phase)
{
    switch (phase) {
    case Phase::spmv:
        return "spmv";
    case Phase::precond:
        return "precond_apply";
    case Phase::reduction:
        return "reduction";
    case Phase::update:
        return "update";
    case Phase::other:
        return "other";
    }
    return "other";
}

/// Point-in-time sum over every shard: wall seconds, thread-CPU seconds
/// and span count per phase kind. Subtraction gives the delta
/// attributable to one solve. Wall time is what bandwidth attribution
/// wants (achieved GB/s is a wall-clock fact); CPU time is what drift
/// detection wants -- a scheduler preemption landing inside one span
/// inflates its wall share arbitrarily but leaves its CPU share intact,
/// so share comparisons against the model stay meaningful on a loaded
/// machine.
struct PhaseTotals {
    double seconds[phase_count] = {};
    double cpu_seconds[phase_count] = {};
    std::int64_t calls[phase_count] = {};

    double total_seconds() const
    {
        double sum = 0;
        for (const double s : seconds) {
            sum += s;
        }
        return sum;
    }

    double total_cpu_seconds() const
    {
        double sum = 0;
        for (const double s : cpu_seconds) {
            sum += s;
        }
        return sum;
    }

    PhaseTotals operator-(const PhaseTotals& earlier) const
    {
        PhaseTotals d;
        for (int p = 0; p < phase_count; ++p) {
            d.seconds[p] = seconds[p] - earlier.seconds[p];
            d.cpu_seconds[p] = cpu_seconds[p] - earlier.cpu_seconds[p];
            d.calls[p] = calls[p] - earlier.calls[p];
        }
        return d;
    }
};

/// Per-thread sharded phase-time tally. add() is wait-free (two relaxed
/// fetch_adds on the calling thread's own cache line); totals() sums the
/// shards with relaxed loads -- callers measure before/after deltas
/// around a solve, so in-flight recording only blurs a delta by the spans
/// racing the snapshot.
class PhaseAccumulator {
public:
    void add(Phase phase, std::int64_t wall_ns, std::int64_t cpu_ns)
    {
        auto& shard = shards_.local();
        const auto p = static_cast<int>(phase);
        shard.ns[p].fetch_add(wall_ns, std::memory_order_relaxed);
        shard.cpu_ns[p].fetch_add(cpu_ns, std::memory_order_relaxed);
        shard.calls[p].fetch_add(1, std::memory_order_relaxed);
    }

    PhaseTotals totals() const
    {
        PhaseTotals t;
        shards_.for_each([&](const Shard& shard) {
            for (int p = 0; p < phase_count; ++p) {
                t.seconds[p] +=
                    1e-9 * static_cast<double>(
                               shard.ns[p].load(std::memory_order_relaxed));
                t.cpu_seconds[p] +=
                    1e-9 *
                    static_cast<double>(
                        shard.cpu_ns[p].load(std::memory_order_relaxed));
                t.calls[p] +=
                    shard.calls[p].load(std::memory_order_relaxed);
            }
        });
        return t;
    }

    /// Zeroes every shard (tests; not needed for delta-based use).
    void reset()
    {
        shards_.for_each([](Shard& shard) {
            for (int p = 0; p < phase_count; ++p) {
                shard.ns[p].store(0, std::memory_order_relaxed);
                shard.cpu_ns[p].store(0, std::memory_order_relaxed);
                shard.calls[p].store(0, std::memory_order_relaxed);
            }
        });
    }

private:
    struct alignas(64) Shard {
        int index = 0;  ///< registration order (required by PerThreadShards)
        std::atomic<std::int64_t> ns[phase_count] = {};
        std::atomic<std::int64_t> cpu_ns[phase_count] = {};
        std::atomic<std::int64_t> calls[phase_count] = {};
    };

    PerThreadShards<Shard> shards_;
};

/// The process-wide accumulator every `obs::traced` span records into
/// while metrics are enabled.
PhaseAccumulator& phase_times();

}  // namespace bsis::obs
