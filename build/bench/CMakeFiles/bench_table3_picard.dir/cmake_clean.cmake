file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_picard.dir/bench_table3_picard.cpp.o"
  "CMakeFiles/bench_table3_picard.dir/bench_table3_picard.cpp.o.d"
  "bench_table3_picard"
  "bench_table3_picard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_picard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
