// Ablation for Section II's design remark: assembling the whole batch into
// one block-diagonal system and solving it monolithically is slower than
// the batched solver -- the global dot products couple all systems, the
// iteration count is set by the hardest (electron) system, and every
// system pays for every global iteration.
#include <iostream>

#include "common.hpp"
#include "core/monolithic.hpp"

int main()
{
    using namespace bsis;
    using bsis::bench::XgcBatch;

    SolverSettings settings;
    settings.tolerance = 1e-10;
    settings.max_iterations = 1000;

    Table table({"batch", "batched_total_iters", "batched_max_iters",
                 "monolithic_global_iters", "monolithic_work_factor"});
    const std::vector<size_type> sizes =
        bench::quick_mode() ? std::vector<size_type>{16}
                            : std::vector<size_type>{8, 32, 128};
    for (const auto nbatch : sizes) {
        XgcBatch problem(nbatch);
        BatchVector<real_type> x(nbatch, problem.a.rows());
        const auto batched =
            solve_batch(problem.a, problem.rhs(), x, settings);

        BatchVector<real_type> x_mono(nbatch, problem.a.rows());
        const auto mono =
            solve_monolithic(problem.a, problem.rhs(), x_mono, settings);

        // Work: the monolithic iteration sweeps EVERY system each global
        // iteration; the batched solver stops each system individually.
        const double mono_work =
            static_cast<double>(mono.iterations) * nbatch;
        const double batched_work =
            static_cast<double>(batched.log.total_iterations());
        table.new_row()
            .add(nbatch)
            .add(batched.log.total_iterations())
            .add(batched.log.max_iterations())
            .add(mono.iterations)
            .add(mono_work / batched_work, 3);
    }
    bench::emit("ablation_monolithic",
                "Ablation: batched per-system solves vs one monolithic "
                "block-diagonal BiCGStab (mixed ion+electron batches)",
                table);
    std::cout << "\nShape check (paper Section II: the monolithic approach "
                 "wastes work on\nconverged systems; the work factor must "
                 "exceed 1 and grow with batch mix)\n";
    return 0;
}
