#include "core/monolithic.hpp"

#include "core/bicgstab.hpp"
#include "core/workspace.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace bsis {

void spmv(const BlockDiagView& a, ConstVecView<real_type> x,
          VecView<real_type> y)
{
    const index_type n = a.batch->rows();
    BSIS_ASSERT(x.len == a.rows_total() && y.len == a.rows_total());
    for (size_type blk = 0; blk < a.batch->num_batch(); ++blk) {
        const auto av = a.batch->entry(blk);
        const ConstVecView<real_type> xb{
            x.data + static_cast<std::size_t>(blk) * n, n};
        const VecView<real_type> yb{
            const_cast<real_type*>(y.data) +
                static_cast<std::size_t>(blk) * n,
            n};
        spmv(av, xb, yb);
    }
}

void extract_diagonal(const BlockDiagView& a, VecView<real_type> diag)
{
    const index_type n = a.batch->rows();
    BSIS_ASSERT(diag.len == a.rows_total());
    for (size_type blk = 0; blk < a.batch->num_batch(); ++blk) {
        const VecView<real_type> db{
            diag.data + static_cast<std::size_t>(blk) * n, n};
        extract_diagonal(a.batch->entry(blk), db);
    }
}

MonolithicResult solve_monolithic(const BatchCsr<real_type>& a,
                                  const BatchVector<real_type>& b,
                                  BatchVector<real_type>& x,
                                  const SolverSettings& settings)
{
    BSIS_ENSURE_DIMS(a.num_batch() == b.num_batch() &&
                         a.num_batch() == x.num_batch(),
                     "matrix/rhs/solution batch counts must match");
    BSIS_ENSURE_ARG(settings.solver == SolverType::bicgstab,
                    "monolithic mode implements BiCGStab only");

    const BlockDiagView global{&a};
    const index_type n_total = global.rows_total();
    const ConstVecView<real_type> b_all{b.data(),
                                        static_cast<index_type>(b.size())};
    VecView<real_type> x_all{x.data(), static_cast<index_type>(x.size())};
    BSIS_ENSURE_DIMS(b_all.len == n_total && x_all.len == n_total,
                     "vector sizes must match the global operator");
    if (!settings.use_initial_guess) {
        x.fill(real_type{0});
    }

    Workspace ws(n_total,
                 bicgstab_work_vectors +
                     precond_work_vectors(settings.precond));

    MonolithicResult result;
    Timer timer;
    EntryResult entry;
    if (settings.precond == PrecondType::jacobi) {
        JacobiPrec prec;
        prec.generate(global, ws.slot(bicgstab_work_vectors));
        entry = bicgstab_kernel(global, b_all, x_all, prec,
                                AbsResidualStop{settings.tolerance},
                                settings.max_iterations, ws);
    } else {
        IdentityPrec prec;
        entry = bicgstab_kernel(global, b_all, x_all, prec,
                                AbsResidualStop{settings.tolerance},
                                settings.max_iterations, ws);
    }
    result.wall_seconds = timer.seconds();
    result.iterations = entry.iterations;
    result.residual_norm = entry.residual_norm;
    result.converged = entry.converged;
    return result;
}

}  // namespace bsis
