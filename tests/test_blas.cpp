#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/batch_vector.hpp"
#include "blas/kernels.hpp"
#include "util/rng.hpp"

namespace bsis {
namespace {

TEST(BatchVector, ShapeAndEntryViews)
{
    BatchVector<real_type> v(3, 5, 2.0);
    EXPECT_EQ(v.num_batch(), 3);
    EXPECT_EQ(v.len(), 5);
    EXPECT_EQ(v.size(), 15);
    auto e1 = v.entry(1);
    e1[2] = 7.0;
    EXPECT_EQ(v.entry(1)[2], 7.0);
    EXPECT_EQ(v.entry(0)[2], 2.0);  // entries are independent
    EXPECT_EQ(v.entry(2)[2], 2.0);
}

TEST(BatchVector, FillOverwritesEverything)
{
    BatchVector<real_type> v(2, 3, 1.0);
    v.fill(-4.0);
    for (size_type b = 0; b < 2; ++b) {
        for (index_type i = 0; i < 3; ++i) {
            EXPECT_EQ(v.entry(b)[i], -4.0);
        }
    }
}

TEST(BatchVector, RejectsNegativeShape)
{
    EXPECT_THROW(BatchVector<real_type>(-1, 3), BadArgument);
    EXPECT_THROW(BatchVector<real_type>(1, -3), BadArgument);
}

class KernelsTest : public ::testing::TestWithParam<index_type> {
protected:
    std::vector<real_type> random_vec(index_type n, std::uint64_t seed)
    {
        Rng rng(seed);
        std::vector<real_type> v(static_cast<std::size_t>(n));
        for (auto& x : v) {
            x = rng.uniform(-1.0, 1.0);
        }
        return v;
    }
};

TEST_P(KernelsTest, CopyAndFill)
{
    const index_type n = GetParam();
    auto a = random_vec(n, 1);
    std::vector<real_type> b(static_cast<std::size_t>(n), 0.0);
    blas::copy<real_type>({a.data(), n}, {b.data(), n});
    EXPECT_EQ(a, b);
    blas::fill<real_type>({b.data(), n}, 3.0);
    for (const auto x : b) {
        EXPECT_EQ(x, 3.0);
    }
}

TEST_P(KernelsTest, AxpyMatchesReference)
{
    const index_type n = GetParam();
    auto x = random_vec(n, 2);
    auto y = random_vec(n, 3);
    auto expected = y;
    for (index_type i = 0; i < n; ++i) {
        expected[static_cast<std::size_t>(i)] +=
            0.75 * x[static_cast<std::size_t>(i)];
    }
    blas::axpy<real_type>(0.75, {x.data(), n}, {y.data(), n});
    for (index_type i = 0; i < n; ++i) {
        EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(i)],
                         expected[static_cast<std::size_t>(i)]);
    }
}

TEST_P(KernelsTest, AxpbyMatchesReference)
{
    const index_type n = GetParam();
    auto x = random_vec(n, 4);
    auto y = random_vec(n, 5);
    auto expected = y;
    for (index_type i = 0; i < n; ++i) {
        expected[static_cast<std::size_t>(i)] =
            2.0 * x[static_cast<std::size_t>(i)] -
            0.5 * expected[static_cast<std::size_t>(i)];
    }
    blas::axpby<real_type>(2.0, {x.data(), n}, -0.5, {y.data(), n});
    for (index_type i = 0; i < n; ++i) {
        EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(i)],
                         expected[static_cast<std::size_t>(i)]);
    }
}

TEST_P(KernelsTest, DotAgainstAccumulation)
{
    const index_type n = GetParam();
    auto x = random_vec(n, 6);
    auto y = random_vec(n, 7);
    real_type expected = 0;
    for (index_type i = 0; i < n; ++i) {
        expected += x[static_cast<std::size_t>(i)] *
                    y[static_cast<std::size_t>(i)];
    }
    EXPECT_NEAR(blas::dot<real_type>({x.data(), n}, {y.data(), n}),
                expected, 1e-12 * n);
}

TEST_P(KernelsTest, Nrm2IsSqrtOfSelfDot)
{
    const index_type n = GetParam();
    auto x = random_vec(n, 8);
    const real_type d = blas::dot<real_type>({x.data(), n}, {x.data(), n});
    EXPECT_NEAR(blas::nrm2<real_type>({x.data(), n}), std::sqrt(d), 1e-13);
}

TEST_P(KernelsTest, ScalAndSub)
{
    const index_type n = GetParam();
    auto x = random_vec(n, 9);
    auto orig = x;
    blas::scal<real_type>(-2.0, {x.data(), n});
    std::vector<real_type> z(static_cast<std::size_t>(n));
    blas::sub<real_type>({x.data(), n}, {orig.data(), n}, {z.data(), n});
    for (index_type i = 0; i < n; ++i) {
        EXPECT_NEAR(z[static_cast<std::size_t>(i)],
                    -3.0 * orig[static_cast<std::size_t>(i)], 1e-14);
    }
}

TEST_P(KernelsTest, ElementwiseMul)
{
    const index_type n = GetParam();
    auto x = random_vec(n, 10);
    auto y = random_vec(n, 11);
    std::vector<real_type> z(static_cast<std::size_t>(n));
    blas::mul_elementwise<real_type>({x.data(), n}, {y.data(), n},
                                     {z.data(), n});
    for (index_type i = 0; i < n; ++i) {
        EXPECT_DOUBLE_EQ(z[static_cast<std::size_t>(i)],
                         x[static_cast<std::size_t>(i)] *
                             y[static_cast<std::size_t>(i)]);
    }
}

TEST_P(KernelsTest, NrmInfIsMaxAbs)
{
    const index_type n = GetParam();
    auto x = random_vec(n, 12);
    real_type expected = 0;
    for (const auto v : x) {
        expected = std::max(expected, std::abs(v));
    }
    EXPECT_EQ(blas::nrm_inf<real_type>({x.data(), n}), expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, KernelsTest,
                         ::testing::Values<index_type>(1, 7, 32, 33, 992));

TEST(Kernels, GemvMatchesManualProduct)
{
    const index_type n = 4;
    // Row-major 4x4.
    std::vector<real_type> a{1, 2, 0, 0,  //
                             0, 3, 1, 0,  //
                             0, 0, 4, 2,  //
                             5, 0, 0, 6};
    std::vector<real_type> x{1, -1, 2, 0.5};
    std::vector<real_type> y(4, 0.0);
    blas::gemv<real_type>(n, a.data(), {x.data(), n}, {y.data(), n});
    EXPECT_DOUBLE_EQ(y[0], -1.0);
    EXPECT_DOUBLE_EQ(y[1], -1.0);
    EXPECT_DOUBLE_EQ(y[2], 9.0);
    EXPECT_DOUBLE_EQ(y[3], 8.0);
}

TEST(Kernels, DotOfEmptyVectorsIsZero)
{
    EXPECT_EQ(blas::dot<real_type>({nullptr, 0}, {nullptr, 0}), 0.0);
    EXPECT_EQ(blas::nrm2<real_type>({nullptr, 0}), 0.0);
}

}  // namespace
}  // namespace bsis
