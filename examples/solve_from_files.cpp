// Benchmarking driver in the style of GINKGO's, as used by the paper's
// reproducibility appendix (run_xgc_matrices.sh): reads a batch of systems
// from a MatrixMarket folder layout (<root>/<i>/A.mtx, <root>/<i>/b.mtx),
// solves it with a configurable batched solver, and reports per-system
// convergence and the modeled device time.
//
//   ./build/examples/solve_from_files <batch_dir> [options]
//     --solver bicgstab|cgs|gmres|richardson   (default bicgstab)
//     --format csr|ell                         (default ell)
//     --device v100|a100|mi100                 (default v100)
//     --tol <abs residual tolerance>           (default 1e-10)
//     --max-iters <n>                          (default 500)
#include <cstring>
#include <iostream>
#include <string>

#include "exec/executor.hpp"
#include "io/matrix_market.hpp"
#include "matrix/conversions.hpp"

namespace {

using namespace bsis;

[[noreturn]] void usage(const char* what)
{
    std::cerr << "solve_from_files: " << what << "\n";
    std::exit(1);
}

}  // namespace

int main(int argc, char** argv)
{
    if (argc < 2) {
        usage("missing batch directory");
    }
    const std::string root = argv[1];
    SolverSettings settings;
    std::string format = "ell";
    std::string device = "v100";
    for (int i = 2; i + 1 < argc; i += 2) {
        const std::string key = argv[i];
        const std::string value = argv[i + 1];
        if (key == "--solver") {
            if (value == "bicgstab") {
                settings.solver = SolverType::bicgstab;
            } else if (value == "cgs") {
                settings.solver = SolverType::cgs;
            } else if (value == "gmres") {
                settings.solver = SolverType::gmres;
            } else if (value == "richardson") {
                settings.solver = SolverType::richardson;
            } else {
                usage("unknown solver");
            }
        } else if (key == "--format") {
            format = value;
        } else if (key == "--device") {
            device = value;
        } else if (key == "--tol") {
            settings.tolerance = std::atof(value.c_str());
        } else if (key == "--max-iters") {
            settings.max_iterations = std::atoi(value.c_str());
        } else {
            usage(("unknown option " + key).c_str());
        }
    }

    auto [a, b] = io::read_batch(root);
    std::cout << "read " << a.num_batch() << " systems of " << a.rows()
              << " rows (" << a.nnz_per_entry() << " nnz each) from "
              << root << "\n";

    const gpusim::DeviceSpec& spec = device == "a100" ? gpusim::a100()
                                     : device == "mi100"
                                         ? gpusim::mi100()
                                         : gpusim::v100();
    const SimGpuExecutor exec(spec);
    BatchVector<real_type> x(a.num_batch(), a.rows());
    GpuSolveReport report;
    if (format == "ell") {
        auto ell = to_ell(a);
        report = exec.solve(ell, b, x, settings);
    } else if (format == "csr") {
        report = exec.solve(a, b, x, settings);
    } else {
        usage("unknown format");
    }

    std::cout << "device " << spec.name << ", format " << format
              << ", abs tol " << settings.tolerance << ":\n"
              << "  all converged:      "
              << (report.log.all_converged() ? "yes" : "NO") << "\n"
              << "  iterations min/mean/max: ";
    int min_it = report.log.num_batch() > 0 ? report.log.iterations(0) : 0;
    for (size_type i = 0; i < report.log.num_batch(); ++i) {
        min_it = std::min(min_it, report.log.iterations(i));
    }
    std::cout << min_it << " / " << report.log.mean_iterations() << " / "
              << report.log.max_iterations() << "\n"
              << "  modeled kernel time: " << report.kernel_seconds * 1e3
              << " ms (" << report.per_entry_seconds() * 1e6
              << " us/entry)\n"
              << "  host wall time:      " << report.wall_seconds * 1e3
              << " ms\n"
              << "  shared-memory config: " << report.storage.num_shared
              << " of " << report.storage.slots.size()
              << " vectors in shared memory, occupancy "
              << report.occupancy.blocks_per_cu << " block(s)/CU\n";
    return report.log.all_converged() ? 0 : 2;
}
