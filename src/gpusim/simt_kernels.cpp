#include "gpusim/simt_kernels.hpp"

#include <algorithm>

#include "matrix/batch_ell.hpp"
#include "util/error.hpp"

namespace bsis::gpusim {

namespace {

/// Region bases of the virtual address space. Pattern regions are shared
/// by all systems; value/vector regions are strided per system. Each base
/// carries a distinct non-power-of-two offset so the regions do not alias
/// onto the same cache sets (power-of-two bases would all index set 0).
constexpr std::uint64_t region_col_idxs = (std::uint64_t{1} << 32) + 0x1480;
constexpr std::uint64_t region_row_ptrs = (std::uint64_t{2} << 32) + 0x3900;
constexpr std::uint64_t region_values = (std::uint64_t{4} << 32) + 0x6c80;
constexpr std::uint64_t region_b = (std::uint64_t{8} << 32) + 0x9e00;
constexpr std::uint64_t region_spill = (std::uint64_t{16} << 32) + 0xd580;
constexpr std::uint64_t region_log = (std::uint64_t{32} << 32) + 0x10e00;

std::uint64_t round_up(std::uint64_t x, std::uint64_t align)
{
    return (x + align - 1) / align * align;
}

}  // namespace

AddressMap AddressMap::for_system(size_type system_index, index_type rows,
                                  index_type nnz_stored,
                                  int num_spill_vectors)
{
    const auto sys = static_cast<std::uint64_t>(system_index);
    AddressMap map;
    map.rows = rows;
    map.col_idxs = region_col_idxs;
    map.row_ptrs = region_row_ptrs;
    map.values =
        region_values +
        sys * round_up(static_cast<std::uint64_t>(nnz_stored) *
                           sizeof(real_type),
                       256);
    map.b = region_b +
            sys * round_up(
                      static_cast<std::uint64_t>(rows) * sizeof(real_type),
                      256);
    map.spill =
        region_spill +
        sys * round_up(static_cast<std::uint64_t>(
                           std::max(num_spill_vectors, 1)) *
                           rows * sizeof(real_type),
                       256);
    map.log = region_log + sys * round_up(log_record_bytes, 256);
    return map;
}

size_type traced_shared_bytes(const StorageConfig& config, int num_warps)
{
    // Two scratch slots per warp: the fused dual-dot publishes two partials
    // per warp in one pass.
    return config.shared_bytes +
           static_cast<size_type>(num_warps) * 2 *
               static_cast<size_type>(sizeof(real_type));
}

void register_map_buffers(Sanitizer& sanitizer, const AddressMap& map,
                          index_type rows, index_type nnz_stored,
                          bool csr_pattern, int num_spill_vectors)
{
    const auto ib = static_cast<size_type>(sizeof(index_type));
    const auto vb = static_cast<size_type>(sizeof(real_type));
    sanitizer.register_buffer("col_idxs", map.col_idxs,
                              static_cast<size_type>(nnz_stored) * ib);
    if (csr_pattern) {
        sanitizer.register_buffer(
            "row_ptrs", map.row_ptrs,
            (static_cast<size_type>(rows) + 1) * ib);
    }
    sanitizer.register_buffer("values", map.values,
                              static_cast<size_type>(nnz_stored) * vb);
    sanitizer.register_buffer("b", map.b,
                              static_cast<size_type>(rows) * vb);
    if (num_spill_vectors > 0) {
        sanitizer.register_buffer(
            "spill", map.spill,
            static_cast<size_type>(num_spill_vectors) * rows * vb);
    }
    sanitizer.register_buffer("log", map.log,
                              static_cast<size_type>(log_record_bytes));
}

namespace {

/// One coalesced warp access to `active` consecutive elements starting at
/// element index `first` of an array at `base`.
void contiguous_access(BlockTracer& tracer, std::uint64_t base,
                       index_type first, int active, int elem_bytes,
                       bool store, std::vector<std::uint64_t>& scratch)
{
    scratch.clear();
    for (int lane = 0; lane < active; ++lane) {
        scratch.push_back(base + static_cast<std::uint64_t>(first + lane) *
                                     static_cast<std::uint64_t>(elem_bytes));
    }
    if (store) {
        tracer.store_global(scratch, elem_bytes);
    } else {
        tracer.load_global(scratch, elem_bytes);
    }
}

/// Same, but for a vector living in shared memory (base = byte offset).
void shared_contiguous(BlockTracer& tracer, std::uint64_t base,
                       index_type first, int active, bool store,
                       std::vector<std::uint64_t>& scratch)
{
    scratch.clear();
    for (int lane = 0; lane < active; ++lane) {
        scratch.push_back(base + static_cast<std::uint64_t>(first + lane) *
                                     sizeof(real_type));
    }
    if (store) {
        tracer.store_shared(scratch, sizeof(real_type));
    } else {
        tracer.load_shared(scratch, sizeof(real_type));
    }
}

/// Reads vector elements [first, first+active) from shared or global.
void vec_read(BlockTracer& tracer, std::uint64_t base, index_type first,
              int active, std::vector<std::uint64_t>& scratch)
{
    if (is_shared_addr(base)) {
        shared_contiguous(tracer, base, first, active, false, scratch);
    } else {
        contiguous_access(tracer, base, first, active, sizeof(real_type),
                          false, scratch);
    }
}

void vec_write(BlockTracer& tracer, std::uint64_t base, index_type first,
               int active, std::vector<std::uint64_t>& scratch)
{
    if (is_shared_addr(base)) {
        shared_contiguous(tracer, base, first, active, true, scratch);
    } else {
        contiguous_access(tracer, base, first, active, sizeof(real_type),
                          true, scratch);
    }
}

/// Gathers x[col] for the given column indices (SpMV right operand).
void gather_x(BlockTracer& tracer, std::uint64_t x_base,
              const index_type* cols, int active,
              std::vector<std::uint64_t>& lane_addrs)
{
    lane_addrs.clear();
    for (int lane = 0; lane < active; ++lane) {
        lane_addrs.push_back(x_base +
                             static_cast<std::uint64_t>(cols[lane]) *
                                 sizeof(real_type));
    }
    if (is_shared_addr(x_base)) {
        tracer.load_shared(lane_addrs, sizeof(real_type));
    } else {
        tracer.load_global(lane_addrs, sizeof(real_type));
    }
}

/// Warp shuffle reduction over `count` values: stages halve the live
/// values; each stage is one warp instruction with that many active lanes.
void warp_reduce(BlockTracer& tracer, int count)
{
    while (count > 1) {
        const int half = (count + 1) / 2;
        tracer.flop(half);
        count = half;
    }
}

/// Cross-warp combine of `num_results` per-warp reduction partials: warp
/// w's partial for result j lives at scratch slot w * num_results + j.
/// Partials are published, a barrier orders them, warp 0 combines each
/// result and publishes it to the first `num_results` scratch slots, a
/// barrier makes them visible, every thread broadcast-reads them, and a
/// final barrier protects the scratch before reuse.
void cross_warp_combine(BlockTracer& tracer, std::uint64_t scratch_base,
                        int num_results)
{
    const int warp = tracer.warp_size();
    const int warps = tracer.num_warps();
    std::vector<std::uint64_t> addrs;
    const auto slot = [&](int w, int j) {
        return scratch_base +
               static_cast<std::uint64_t>(w * num_results + j) *
                   sizeof(real_type);
    };
    // The leading lanes of each warp publish its partials.
    for (int w = 0; w < warps; ++w) {
        tracer.set_warp(w);
        addrs.clear();
        for (int j = 0; j < num_results; ++j) {
            addrs.push_back(slot(w, j));
        }
        tracer.store_shared(addrs, sizeof(real_type));
    }
    tracer.barrier();  // partials must be visible before the combine
    // Warp 0 combines each result's partials and publishes the results.
    tracer.set_warp(0);
    for (int j = 0; j < num_results; ++j) {
        addrs.clear();
        for (int w = 0; w < warps; ++w) {
            addrs.push_back(slot(w, j));
        }
        tracer.load_shared(addrs, sizeof(real_type));
        warp_reduce(tracer, warps);
    }
    addrs.clear();
    for (int j = 0; j < num_results; ++j) {
        addrs.push_back(slot(0, j));
    }
    tracer.store_shared(addrs, sizeof(real_type));
    tracer.barrier();  // results must be visible to every warp
    // Every thread reads the results back: full-warp broadcast loads (LDS
    // broadcasts same-address lanes in one cycle).
    for (int j = 0; j < num_results; ++j) {
        addrs.assign(static_cast<std::size_t>(warp), slot(0, j));
        for (int w = 0; w < warps; ++w) {
            tracer.set_warp(w);
            tracer.load_shared(addrs, sizeof(real_type));
        }
    }
    tracer.barrier();  // scratch may be reused after this point
}

}  // namespace

void trace_spmv_csr(BlockTracer& tracer, const AddressMap& map,
                    const std::vector<index_type>& row_ptrs,
                    const std::vector<index_type>& col_idxs,
                    std::uint64_t x_base, std::uint64_t y_base)
{
    tracer.set_kernel("spmv_csr");
    const auto rows = static_cast<index_type>(row_ptrs.size()) - 1;
    const int warp = tracer.warp_size();
    const int warps = tracer.num_warps();
    std::vector<std::uint64_t> scratch;
    std::vector<std::uint64_t> gather;

    // Warp w handles rows w, w + warps, ... (one warp per row).
    for (index_type r = 0; r < rows; ++r) {
        tracer.set_warp(static_cast<int>(r % warps));
        // Row extent loaded by the warp leader.
        contiguous_access(tracer, map.row_ptrs, r, 2, sizeof(index_type),
                          false, scratch);
        const index_type begin = row_ptrs[r];
        const index_type nnz = row_ptrs[r + 1] - begin;
        for (index_type k0 = 0; k0 < nnz; k0 += warp) {
            const int active =
                static_cast<int>(std::min<index_type>(warp, nnz - k0));
            contiguous_access(tracer, map.col_idxs, begin + k0, active,
                              sizeof(index_type), false, scratch);
            contiguous_access(tracer, map.values, begin + k0, active,
                              sizeof(real_type), false, scratch);
            gather_x(tracer, x_base, col_idxs.data() + begin + k0, active,
                     gather);
            tracer.flop(active, 2);  // fused multiply-add per lane
        }
        warp_reduce(tracer, static_cast<int>(std::min<index_type>(
                                warp, std::max<index_type>(nnz, 1))));
        vec_write(tracer, y_base, r, 1, scratch);
    }
    tracer.barrier();
}

void trace_spmv_ell(BlockTracer& tracer, const AddressMap& map,
                    index_type rows, index_type nnz_per_row,
                    const std::vector<index_type>& ell_col_idxs,
                    std::uint64_t x_base, std::uint64_t y_base)
{
    tracer.set_kernel("spmv_ell");
    const int warp = tracer.warp_size();
    const int warps = tracer.num_warps();
    std::vector<std::uint64_t> scratch;
    std::vector<std::uint64_t> gather;
    std::vector<index_type> cols(static_cast<std::size_t>(warp));

    // Lane r accumulates row r; the slot loop is the outer loop so
    // consecutive lanes read consecutive memory (column-major layout).
    for (index_type k = 0; k < nnz_per_row; ++k) {
        for (index_type r0 = 0; r0 < rows; r0 += warp) {
            tracer.set_warp(static_cast<int>((r0 / warp) % warps));
            const int active =
                static_cast<int>(std::min<index_type>(warp, rows - r0));
            const index_type slot_first = k * rows + r0;
            contiguous_access(tracer, map.col_idxs, slot_first, active,
                              sizeof(index_type), false, scratch);
            contiguous_access(tracer, map.values, slot_first, active,
                              sizeof(real_type), false, scratch);
            int live = 0;
            for (int lane = 0; lane < active; ++lane) {
                const index_type c =
                    ell_col_idxs[static_cast<std::size_t>(slot_first) +
                                 lane];
                if (c != ell_padding) {
                    cols[static_cast<std::size_t>(live++)] = c;
                }
            }
            if (live > 0) {
                gather_x(tracer, x_base, cols.data(), live, gather);
                tracer.flop(live, 2);
            }
        }
    }
    for (index_type r0 = 0; r0 < rows; r0 += warp) {
        tracer.set_warp(static_cast<int>((r0 / warp) % warps));
        const int active =
            static_cast<int>(std::min<index_type>(warp, rows - r0));
        vec_write(tracer, y_base, r0, active, scratch);
    }
    tracer.barrier();
}

void trace_spmv_ell_multi(BlockTracer& tracer, const AddressMap& map,
                          index_type rows, index_type nnz_per_row,
                          const std::vector<index_type>& ell_col_idxs,
                          int threads_per_row, std::uint64_t x_base,
                          std::uint64_t y_base)
{
    tracer.set_kernel("spmv_ell_multi");
    const int warp = tracer.warp_size();
    BSIS_ENSURE_ARG(threads_per_row >= 1 && warp % threads_per_row == 0,
                    "threads_per_row must divide the warp size");
    const int warps = tracer.num_warps();
    const int rows_per_warp = warp / threads_per_row;
    std::vector<std::uint64_t> lane_vals;
    std::vector<std::uint64_t> lane_cols;
    std::vector<std::uint64_t> gather;

    // A warp covers `rows_per_warp` consecutive rows; within each row its
    // thread group strides over the slots.
    for (index_type r0 = 0; r0 < rows; r0 += rows_per_warp) {
        tracer.set_warp(static_cast<int>((r0 / rows_per_warp) % warps));
        const int active_rows = static_cast<int>(
            std::min<index_type>(rows_per_warp, rows - r0));
        for (index_type k0 = 0; k0 < nnz_per_row;
             k0 += threads_per_row) {
            lane_vals.clear();
            lane_cols.clear();
            gather.clear();
            int live = 0;
            for (int rr = 0; rr < active_rows; ++rr) {
                for (int t = 0; t < threads_per_row; ++t) {
                    const index_type k = k0 + t;
                    if (k >= nnz_per_row) {
                        continue;
                    }
                    const std::size_t slot =
                        static_cast<std::size_t>(k) * rows + (r0 + rr);
                    lane_cols.push_back(map.col_idxs +
                                        slot * sizeof(index_type));
                    lane_vals.push_back(map.values +
                                        slot * sizeof(real_type));
                    const index_type c = ell_col_idxs[slot];
                    if (c != ell_padding) {
                        gather.push_back(
                            x_base + static_cast<std::uint64_t>(c) *
                                         sizeof(real_type));
                        ++live;
                    }
                }
            }
            tracer.load_global(lane_cols, sizeof(index_type));
            tracer.load_global(lane_vals, sizeof(real_type));
            if (!gather.empty()) {
                if (is_shared_addr(x_base)) {
                    tracer.load_shared(gather, sizeof(real_type));
                } else {
                    tracer.load_global(gather, sizeof(real_type));
                }
            }
            tracer.flop(live, 2);
        }
        // Sub-warp reduction: log2(threads_per_row) shuffle stages over
        // all groups of the warp.
        int width = threads_per_row;
        while (width > 1) {
            width /= 2;
            tracer.flop(active_rows * width);
        }
        std::vector<std::uint64_t> store;
        for (int rr = 0; rr < active_rows; ++rr) {
            store.push_back(y_base + static_cast<std::uint64_t>(r0 + rr) *
                                         sizeof(real_type));
        }
        if (is_shared_addr(y_base)) {
            tracer.store_shared(store, sizeof(real_type));
        } else {
            tracer.store_global(store, sizeof(real_type));
        }
    }
    tracer.barrier();
}

void trace_dot(BlockTracer& tracer, index_type n, std::uint64_t a_base,
               std::uint64_t b_base, std::uint64_t scratch_base)
{
    tracer.set_kernel("dot");
    const int warp = tracer.warp_size();
    const int warps = tracer.num_warps();
    std::vector<std::uint64_t> scratch;
    // Grid-stride accumulation into per-lane partials.
    for (index_type i0 = 0; i0 < n; i0 += warp) {
        tracer.set_warp(static_cast<int>((i0 / warp) % warps));
        const int active =
            static_cast<int>(std::min<index_type>(warp, n - i0));
        vec_read(tracer, a_base, i0, active, scratch);
        if (b_base != a_base) {
            vec_read(tracer, b_base, i0, active, scratch);
        }
        tracer.flop(active, 2);
    }
    // Per-warp shuffle tree (all warps run it concurrently; issued once).
    warp_reduce(tracer, warp);
    cross_warp_combine(tracer, scratch_base, 1);
}

void trace_dot2(BlockTracer& tracer, index_type n, std::uint64_t x_base,
                std::uint64_t y1_base, std::uint64_t y2_base,
                std::uint64_t scratch_base)
{
    tracer.set_kernel("dot2");
    const int warp = tracer.warp_size();
    const int warps = tracer.num_warps();
    std::vector<std::uint64_t> scratch;
    // One grid-stride sweep feeds BOTH per-lane partials: each distinct
    // operand is read once, then two fused multiply-adds accumulate
    // x*y1 and x*y2.
    for (index_type i0 = 0; i0 < n; i0 += warp) {
        tracer.set_warp(static_cast<int>((i0 / warp) % warps));
        const int active =
            static_cast<int>(std::min<index_type>(warp, n - i0));
        vec_read(tracer, x_base, i0, active, scratch);
        if (y1_base != x_base) {
            vec_read(tracer, y1_base, i0, active, scratch);
        }
        if (y2_base != x_base && y2_base != y1_base) {
            vec_read(tracer, y2_base, i0, active, scratch);
        }
        tracer.flop(active, 2);
        tracer.flop(active, 2);
    }
    // Per-warp shuffle trees for the two partials, then one combine round
    // publishing both results.
    warp_reduce(tracer, warp);
    warp_reduce(tracer, warp);
    cross_warp_combine(tracer, scratch_base, 2);
}

void trace_axpy_nrm2(BlockTracer& tracer, index_type n,
                     const std::vector<std::uint64_t>& read_bases,
                     std::uint64_t out_base, std::uint64_t scratch_base)
{
    tracer.set_kernel("axpy_nrm2");
    const int warp = tracer.warp_size();
    const int warps = tracer.num_warps();
    std::vector<std::uint64_t> scratch;
    // Streaming update sweep that also accumulates the squared norm of the
    // value it writes -- the written element is still in registers, so the
    // norm costs no extra memory traffic.
    for (index_type i0 = 0; i0 < n; i0 += warp) {
        tracer.set_warp(static_cast<int>((i0 / warp) % warps));
        const int active =
            static_cast<int>(std::min<index_type>(warp, n - i0));
        for (const auto base : read_bases) {
            vec_read(tracer, base, i0, active, scratch);
        }
        tracer.flop(active, 2);  // the update
        vec_write(tracer, out_base, i0, active, scratch);
        tracer.flop(active, 2);  // norm accumulation of the written value
    }
    warp_reduce(tracer, warp);
    cross_warp_combine(tracer, scratch_base, 1);
}

void trace_axpy(BlockTracer& tracer, index_type n,
                const std::vector<std::uint64_t>& read_bases,
                std::uint64_t out_base)
{
    tracer.set_kernel("axpy");
    const int warp = tracer.warp_size();
    const int warps = tracer.num_warps();
    std::vector<std::uint64_t> scratch;
    for (index_type i0 = 0; i0 < n; i0 += warp) {
        tracer.set_warp(static_cast<int>((i0 / warp) % warps));
        const int active =
            static_cast<int>(std::min<index_type>(warp, n - i0));
        for (const auto base : read_bases) {
            vec_read(tracer, base, i0, active, scratch);
        }
        tracer.flop(active, 2);
        vec_write(tracer, out_base, i0, active, scratch);
    }
    tracer.barrier();
}

void trace_bicgstab(BlockTracer& tracer, const AddressMap& map,
                    TracedFormat format,
                    const std::vector<index_type>& row_ptrs,
                    const std::vector<index_type>& csr_col_idxs,
                    const std::vector<index_type>& ell_col_idxs,
                    index_type rows, index_type nnz_per_row, int iterations,
                    const StorageConfig& config)
{
    tracer.set_kernel("bicgstab");
    // Resolve every solver vector to its shared-memory offset or a spilled
    // global region, in slot order. Shared vector i sits at byte offset
    // i * padded_length * sizeof(real_type); the cross-warp reduction
    // scratch follows the last shared vector.
    BSIS_ENSURE_ARG(!config.slots.empty(), "storage config not built");
    const auto vector_bytes =
        static_cast<std::uint64_t>(config.padded_length) *
        sizeof(real_type);
    std::vector<std::uint64_t> base(config.slots.size());
    int spill = 0;
    for (std::size_t i = 0; i < config.slots.size(); ++i) {
        base[i] =
            config.slots[i].space == MemSpace::shared
                ? static_cast<std::uint64_t>(
                      config.shared_slot_index(config.slots[i].name)) *
                      vector_bytes
                : map.spill_vec(spill++);
    }
    const std::uint64_t reduce_scratch =
        static_cast<std::uint64_t>(config.num_shared) * vector_bytes;
    const auto vec = [&](const char* name) {
        for (std::size_t i = 0; i < config.slots.size(); ++i) {
            if (config.slots[i].name == name) {
                return base[i];
            }
        }
        throw BadArgument("trace_bicgstab",
                          std::string("unknown slot ") + name);
    };
    const auto p_hat = vec("p_hat");
    const auto v = vec("v");
    const auto s_hat = vec("s_hat");
    const auto t = vec("t");
    const auto r = vec("r");
    const auto r_hat = vec("r_hat");
    const auto p = vec("p");
    const auto s = vec("s");
    const auto x = vec("x");
    const bool has_jacobi = config.slots.back().cls == SlotClass::precond;
    const std::uint64_t inv_diag =
        has_jacobi ? base.back() : shared_space;

    const auto spmv = [&](std::uint64_t in, std::uint64_t out) {
        if (format == TracedFormat::csr) {
            trace_spmv_csr(tracer, map, row_ptrs, csr_col_idxs, in, out);
        } else {
            trace_spmv_ell(tracer, map, rows, nnz_per_row, ell_col_idxs, in,
                           out);
        }
    };
    const auto precond = [&](std::uint64_t in, std::uint64_t out) {
        if (has_jacobi) {
            trace_axpy(tracer, rows, {inv_diag, in}, out);
        } else {
            trace_axpy(tracer, rows, {in}, out);
        }
    };
    const auto dot = [&](std::uint64_t a, std::uint64_t b) {
        trace_dot(tracer, rows, a, b, reduce_scratch);
    };

    // Setup: Jacobi generation (diagonal gather + invert), r = b - A x
    // with the initial norm fused into the update sweep, r_hat = r.
    if (has_jacobi) {
        trace_axpy(tracer, rows, {map.values}, inv_diag);
    }
    spmv(x, t);
    trace_axpy_nrm2(tracer, rows, {map.b, t}, r, reduce_scratch);
    trace_axpy(tracer, rows, {r}, r_hat);

    // Fused iteration: the paper's single-pass update kernels. ||s|| and
    // ||r|| ride on the s and r update sweeps; t.s and t.t share one
    // dual-dot sweep.
    for (int it = 0; it < iterations; ++it) {
        dot(r, r_hat);                            // rho
        trace_axpy(tracer, rows, {r, p, v}, p);   // p update
        precond(p, p_hat);
        spmv(p_hat, v);
        dot(r_hat, v);                            // alpha denominator
        trace_axpy_nrm2(tracer, rows, {r, v}, s,  // s = r - alpha v, ||s||
                        reduce_scratch);
        precond(s, s_hat);
        spmv(s_hat, t);
        trace_dot2(tracer, rows, t, t, s,         // omega num. + denom.
                   reduce_scratch);
        trace_axpy(tracer, rows, {x, p_hat, s_hat}, x);
        trace_axpy_nrm2(tracer, rows, {s, t}, r,  // r update, ||r||
                        reduce_scratch);
    }

    // Exit write-back of the per-system log record: lane 0 stores
    // {iterations, residual_norm, failure class} -- the same taxonomy the
    // host-side kernels classify -- as three 8-byte words. This is what a
    // real GPU kernel must emit for the flight recorder to work off-device.
    tracer.instr(1);
    tracer.store_global({map.log}, 8);
    tracer.store_global({map.log + 8}, 8);
    tracer.store_global({map.log + 16}, 8);
}

}  // namespace bsis::gpusim
