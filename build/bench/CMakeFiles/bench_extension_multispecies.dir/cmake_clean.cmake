file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_multispecies.dir/bench_extension_multispecies.cpp.o"
  "CMakeFiles/bench_extension_multispecies.dir/bench_extension_multispecies.cpp.o.d"
  "bench_extension_multispecies"
  "bench_extension_multispecies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_multispecies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
