// Shared helpers for the benchmark binaries.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "exec/executor.hpp"
#include "matrix/conversions.hpp"
#include "util/table.hpp"
#include "xgc/picard.hpp"
#include "xgc/workload.hpp"

namespace bsis::bench {

/// True when the environment asks for a reduced sweep (BSIS_QUICK=1).
inline bool quick_mode()
{
    const char* env = std::getenv("BSIS_QUICK");
    return env != nullptr && env[0] == '1';
}

/// Batch sizes swept by the Fig. 6/7/8 benchmarks (numbers of systems;
/// always even so ion and electron counts match, as in the paper).
inline std::vector<size_type> batch_sizes()
{
    if (quick_mode()) {
        return {120, 480};
    }
    return {120, 240, 480, 960, 1920, 2880};
}

/// First-Picard-iteration batch of collision matrices (zero-guess rhs is
/// the pre-step distribution), mixed ion+electron.
struct XgcBatch {
    xgc::CollisionWorkload workload;
    BatchCsr<real_type> a;

    explicit XgcBatch(size_type num_systems, bool ions = true,
                      bool electrons = true, real_type dt = 0.0035)
        : workload(make_params(num_systems, ions, electrons)),
          a(workload.make_matrix_batch())
    {
        workload.assemble_batch(workload.distributions(),
                                workload.distributions(), dt, a);
    }

    const BatchVector<real_type>& rhs() const
    {
        return workload.distributions();
    }

private:
    static xgc::WorkloadParams make_params(size_type num_systems, bool ions,
                                           bool electrons)
    {
        xgc::WorkloadParams p;
        p.include_ions = ions;
        p.include_electrons = electrons;
        const size_type per_node = (ions ? 1 : 0) + (electrons ? 1 : 0);
        p.num_mesh_nodes = num_systems / per_node;
        return p;
    }
};

/// Prints a table plus a one-line header, and writes the CSV next to the
/// binary as <name>.csv for plotting against the paper figures.
inline void emit(const std::string& name, const std::string& title,
                 const Table& table)
{
    std::cout << "\n=== " << title << "\n\n";
    table.print(std::cout);
    const std::string path = name + ".csv";
    table.write_csv(path);
    std::cout << "\n[csv written to " << path << "]\n";
}

}  // namespace bsis::bench
