// Batched solver driver: the host-side entry point of the library.
//
// Mirrors the paper's kernel call site (Listing 2): the caller picks a
// solver, preconditioner, and stopping criterion at run time; the driver
// dispatches to the compile-time-composed kernel (one fused "kernel
// launch" over the whole batch) and parallelizes over batch entries with
// OpenMP -- each entry is the work of one GPU thread block.
#pragma once

#include "blas/batch_vector.hpp"
#include "core/logger.hpp"
#include "core/precond.hpp"
#include "core/stop.hpp"
#include "core/work_profile.hpp"
#include "matrix/batch_csr.hpp"
#include "matrix/batch_dense.hpp"
#include "matrix/batch_ell.hpp"
#include "matrix/batch_sellp.hpp"
#include "obs/convergence.hpp"
#include "util/types.hpp"

namespace bsis {

namespace obs {
class FlightRecorder;
}  // namespace obs

/// Runtime solver composition, the analogue of assembling template
/// arguments in the paper's Listing 2.
struct SolverSettings {
    SolverType solver = SolverType::bicgstab;
    PrecondType precond = PrecondType::jacobi;
    StopType stop = StopType::abs_residual;
    /// Absolute residual threshold, or relative reduction factor when
    /// `stop == StopType::rel_residual`. The paper's evaluation uses an
    /// absolute tolerance of 1e-10 throughout.
    real_type tolerance = 1e-10;
    int max_iterations = 500;
    int gmres_restart = 30;
    int block_jacobi_size = 4;
    real_type richardson_omega = 1.0;
    /// When false, x is zeroed before solving; when true the caller's x is
    /// used as the initial guess (the Picard warm-start of Fig. 8).
    bool use_initial_guess = false;
    /// When false, BiCGStab runs the reference one-sweep-per-BLAS-call
    /// composition instead of the fused single-pass kernels. Only the
    /// fusion A/B benches and tests flip this; results agree to rounding.
    bool fused_kernels = true;
    /// When true, BiCGStab and CG run the pipelined recurrences (Rupp et
    /// al.): per-iteration standalone reductions collapse into one or two
    /// multi-output sweeps and the residual norm / rho are maintained by
    /// single-iteration recurrences anchored to freshly measured values.
    /// A/B-able like `fused_kernels` (and requires it -- the pipelined
    /// variants ARE fused kernels; with `fused_kernels == false` the flag
    /// is ignored). Applies to the scalar, lockstep, and gpusim paths;
    /// other solvers ignore it. Stopping decisions may differ from the
    /// classic kernels by one iteration; failure classification is
    /// structurally identical.
    bool pipelined = false;
    /// SIMD batch-lockstep width: each OpenMP thread advances this many
    /// batch entries through the fused iteration in lockstep over
    /// batch-interleaved storage. 0 (the default) keeps the scalar
    /// one-entry-at-a-time path; requested widths are rounded down to the
    /// supported {2, 4, 8, 16}. The lockstep path covers BiCGStab and CG
    /// with identity or scalar-Jacobi preconditioning on the sparse
    /// formats (CSR / ELL / SELL-P) with fused kernels; any other
    /// composition silently falls back to the scalar path, and results
    /// match the scalar path per entry up to rounding.
    int lockstep_width = 0;
    /// When true, the solve captures each system's residual trajectory
    /// (the residual norm at the top of every iteration) into
    /// `BatchSolveResult::history`, bounded per system by
    /// `convergence_capacity` points via stride decimation. Off by
    /// default: the hot loops then skip the recording branch entirely.
    bool record_convergence = false;
    int convergence_capacity = 64;
    /// When non-null, every system that does not converge is captured as a
    /// replayable bundle (matrix, rhs, initial guess, settings, residual
    /// history) -- see obs::FlightRecorder. The recorder is owned by the
    /// caller and may serve many solves; capture happens after the solve,
    /// off the hot path.
    obs::FlightRecorder* flight_recorder = nullptr;
    /// When positive, the global TraceSession's per-shard event capacity
    /// is set to this many spans before the solve runs (the equivalent of
    /// `--trace-buffer=N` on the example CLIs). 0 keeps the session's
    /// current capacity. Spans past the cap are dropped and counted in
    /// the `obs.trace.dropped` gauge; the emitted Chrome trace stays
    /// valid JSON either way.
    int trace_shard_capacity = 0;
};

/// Outcome of a batched solve.
struct BatchSolveResult {
    BatchLog log;                ///< per-system iterations / residuals
    double wall_seconds = 0.0;   ///< measured host wall time of the solve
    SolverWorkProfile work;      ///< op counts for the GPU cost model
    /// Residual trajectories; populated (history.active()) only when
    /// `SolverSettings::record_convergence` was set.
    obs::ConvergenceHistory history;
};

/// Solves every system of the batch: a.entry(i) * x.entry(i) = b.entry(i).
/// Supported BatchMatrix types: BatchCsr, BatchEll, BatchSellp, BatchDense
/// (explicitly instantiated in solver.cpp).
template <typename BatchMatrix>
BatchSolveResult solve_batch(const BatchMatrix& a,
                             const BatchVector<real_type>& b,
                             BatchVector<real_type>& x,
                             const SolverSettings& settings);

}  // namespace bsis
