#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "matrix/batch_banded.hpp"
#include "matrix/batch_csr.hpp"
#include "matrix/batch_dense.hpp"
#include "matrix/batch_ell.hpp"
#include "matrix/conversions.hpp"
#include "matrix/stats.hpp"
#include "matrix/stencil.hpp"
#include "util/rng.hpp"

namespace bsis {
namespace {

/// Dense SpMV used as the reference for every sparse format.
std::vector<real_type> dense_spmv(const BatchDense<real_type>& dense,
                                  size_type entry,
                                  const std::vector<real_type>& x)
{
    const auto a = dense.entry(entry);
    std::vector<real_type> y(static_cast<std::size_t>(a.rows), 0.0);
    for (index_type r = 0; r < a.rows; ++r) {
        for (index_type c = 0; c < a.cols; ++c) {
            y[static_cast<std::size_t>(r)] +=
                a(r, c) * x[static_cast<std::size_t>(c)];
        }
    }
    return y;
}

std::vector<real_type> random_vec(index_type n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<real_type> v(static_cast<std::size_t>(n));
    for (auto& x : v) {
        x = rng.uniform(-1.0, 1.0);
    }
    return v;
}

TEST(StencilPattern, NinePointCountsMatchPaperMatrix)
{
    // The paper's matrix: 992 rows, 9 nonzeros per interior row (Fig. 4).
    const auto p = make_stencil_pattern(32, 31, StencilKind::nine_point);
    EXPECT_EQ(p.rows(), 992);
    index_type max_nnz = 0;
    index_type min_nnz = 100;
    for (index_type r = 0; r < p.rows(); ++r) {
        const auto cnt = p.row_ptrs[r + 1] - p.row_ptrs[r];
        max_nnz = std::max(max_nnz, cnt);
        min_nnz = std::min(min_nnz, cnt);
    }
    EXPECT_EQ(max_nnz, 9);
    EXPECT_EQ(min_nnz, 4);  // corners couple to 3 neighbors + self
}

TEST(StencilPattern, FivePointInteriorHasFiveNeighbors)
{
    const auto p = make_stencil_pattern(8, 8, StencilKind::five_point);
    const index_type r = 3 * 8 + 4;  // interior node
    EXPECT_EQ(p.row_ptrs[r + 1] - p.row_ptrs[r], 5);
}

TEST(StencilPattern, ColumnsSortedWithinRows)
{
    const auto p = make_stencil_pattern(7, 5, StencilKind::nine_point);
    for (index_type r = 0; r < p.rows(); ++r) {
        for (index_type k = p.row_ptrs[r] + 1; k < p.row_ptrs[r + 1]; ++k) {
            EXPECT_LT(p.col_idxs[k - 1], p.col_idxs[k]);
        }
    }
}

TEST(StencilPattern, PatternIsStructurallySymmetric)
{
    const auto p = make_stencil_pattern(6, 9, StencilKind::nine_point);
    BatchCsr<real_type> batch(1, p.rows(), p.row_ptrs, p.col_idxs);
    EXPECT_TRUE(compute_stats(batch).pattern_symmetric);
}

TEST(StencilPattern, RejectsTinyGrids)
{
    EXPECT_THROW(make_stencil_pattern(1, 5, StencilKind::five_point),
                 BadArgument);
}

TEST(BatchCsr, ValidatesPattern)
{
    // row_ptrs wrong length
    EXPECT_THROW(BatchCsr<real_type>(1, 3, {0, 1}, {0}), DimensionMismatch);
    // non-monotone row_ptrs
    EXPECT_THROW(BatchCsr<real_type>(1, 2, {0, 2, 1}, {0, 1}),
                 DimensionMismatch);
    // col_idxs size mismatch
    EXPECT_THROW(BatchCsr<real_type>(1, 2, {0, 1, 2}, {0, 1, 1}),
                 DimensionMismatch);
}

TEST(BatchCsr, SharedPatternIndependentValues)
{
    BatchCsr<real_type> batch(2, 2, {0, 1, 2}, {0, 1});
    batch.values(0)[0] = 1.0;
    batch.values(1)[0] = 5.0;
    EXPECT_EQ(batch.entry(0).values[0], 1.0);
    EXPECT_EQ(batch.entry(1).values[0], 5.0);
    EXPECT_EQ(batch.entry(0).row_ptrs, batch.entry(1).row_ptrs);
}

TEST(BatchEll, ValidatesColumnIndices)
{
    EXPECT_THROW(BatchEll<real_type>(1, 2, 1, {0, 5}), DimensionMismatch);
    EXPECT_THROW(BatchEll<real_type>(1, 2, 2, {0, 1}), DimensionMismatch);
    EXPECT_NO_THROW(BatchEll<real_type>(1, 2, 1, {0, ell_padding}));
}

class FormatEquivalence : public ::testing::TestWithParam<size_type> {};

TEST_P(FormatEquivalence, SpmvAgreesAcrossAllFormats)
{
    const size_type nbatch = GetParam();
    SyntheticStencilParams params;
    params.seed = 99;
    auto csr = make_synthetic_batch(9, 7, StencilKind::nine_point, nbatch,
                                    params);
    auto ell = to_ell(csr);
    auto dense = to_dense(csr);
    auto banded = to_banded(csr);
    const auto x = random_vec(csr.rows(), 5);

    for (size_type b = 0; b < nbatch; ++b) {
        const auto expected = dense_spmv(dense, b, x);
        std::vector<real_type> y(static_cast<std::size_t>(csr.rows()));
        const ConstVecView<real_type> xv{x.data(), csr.rows()};
        const VecView<real_type> yv{y.data(), csr.rows()};

        spmv(csr.entry(b), xv, yv);
        for (index_type i = 0; i < csr.rows(); ++i) {
            ASSERT_NEAR(y[static_cast<std::size_t>(i)],
                        expected[static_cast<std::size_t>(i)], 1e-13)
                << "csr batch " << b;
        }
        spmv(ell.entry(b), xv, yv);
        for (index_type i = 0; i < csr.rows(); ++i) {
            ASSERT_NEAR(y[static_cast<std::size_t>(i)],
                        expected[static_cast<std::size_t>(i)], 1e-13)
                << "ell batch " << b;
        }
        spmv(banded.entry(b), xv, yv);
        for (index_type i = 0; i < csr.rows(); ++i) {
            ASSERT_NEAR(y[static_cast<std::size_t>(i)],
                        expected[static_cast<std::size_t>(i)], 1e-13)
                << "banded batch " << b;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, FormatEquivalence,
                         ::testing::Values<size_type>(1, 3, 8));

TEST(Conversions, CsrEllRoundTripPreservesValues)
{
    auto csr = make_synthetic_batch(6, 5, StencilKind::nine_point, 4, {});
    auto ell = to_ell(csr);
    auto back = to_csr(ell);
    ASSERT_EQ(back.nnz_per_entry(), csr.nnz_per_entry());
    for (size_type b = 0; b < csr.num_batch(); ++b) {
        for (index_type k = 0; k < csr.nnz_per_entry(); ++k) {
            ASSERT_EQ(back.values(b)[k], csr.values(b)[k]);
        }
    }
    EXPECT_EQ(back.row_ptrs(), csr.row_ptrs());
    EXPECT_EQ(back.col_idxs(), csr.col_idxs());
}

TEST(Conversions, EllPaddingSlotsAreMarked)
{
    auto csr = make_synthetic_batch(5, 4, StencilKind::nine_point, 1, {});
    auto ell = to_ell(csr);
    EXPECT_EQ(ell.nnz_per_row(), 9);
    // Corner row 0 has 4 nonzeros -> 5 padded slots.
    const auto ev = ell.entry(0);
    int pad = 0;
    for (index_type k = 0; k < ell.nnz_per_row(); ++k) {
        if (ell.col_idxs()[ev.at(0, k)] == ell_padding) {
            ++pad;
            EXPECT_EQ(ev.values[ev.at(0, k)], 0.0);
        }
    }
    EXPECT_EQ(pad, 5);
}

TEST(Conversions, EllRequestedWidthMustFit)
{
    auto csr = make_synthetic_batch(5, 4, StencilKind::nine_point, 1, {});
    EXPECT_THROW(to_ell(csr, 5), DimensionMismatch);
    EXPECT_NO_THROW(to_ell(csr, 12));
}

TEST(Conversions, BandwidthsOfNinePointStencil)
{
    auto csr = make_synthetic_batch(12, 6, StencilKind::nine_point, 1, {});
    const auto [kl, ku] = bandwidths(csr);
    EXPECT_EQ(kl, 13);  // nx + 1
    EXPECT_EQ(ku, 13);
}

TEST(Conversions, BandedRejectsTooNarrowBand)
{
    auto csr = make_synthetic_batch(8, 4, StencilKind::nine_point, 1, {});
    EXPECT_THROW(to_banded(csr, 2, 2), DimensionMismatch);
}

TEST(BatchBanded, LayoutAccessorRoundTrip)
{
    BatchBanded<real_type> banded(1, 6, 2, 1);
    auto v = banded.entry(0);
    v(3, 2) = 42.0;
    v(0, 1) = -1.0;
    EXPECT_EQ(v(3, 2), 42.0);
    EXPECT_EQ(v(0, 1), -1.0);
    EXPECT_TRUE(v.in_band(3, 2));
    EXPECT_FALSE(v.in_band(0, 5));
    EXPECT_EQ(v.ldab(), 2 * 2 + 1 + 1);
}

TEST(Stats, SyntheticBatchIsDiagonallyDominantNonsymmetric)
{
    SyntheticStencilParams params;
    params.advection = 0.05;
    auto csr = make_synthetic_batch(8, 8, StencilKind::nine_point, 2,
                                    params);
    const auto stats = compute_stats(csr);
    EXPECT_EQ(stats.rows, 64);
    EXPECT_TRUE(stats.pattern_symmetric);
    EXPECT_FALSE(stats.numerically_symmetric);
    EXPECT_GT(stats.diagonal_dominance, 1.0);
    EXPECT_EQ(stats.max_nnz_per_row, 9);
}

TEST(Stats, DetectsNumericalSymmetry)
{
    // Pure diffusion with zero perturbation/advection is symmetric.
    SyntheticStencilParams params;
    params.advection = 0.0;
    params.perturbation = 0.0;
    auto csr = make_synthetic_batch(6, 6, StencilKind::five_point, 1,
                                    params);
    EXPECT_TRUE(compute_stats(csr).numerically_symmetric);
}

TEST(Stats, StorageCostMatchesPaperFormulas)
{
    // Fig. 3 formulas with value = 8 bytes, index = 4 bytes.
    const auto cost = storage_cost(992, 8760, 9, 100);
    EXPECT_EQ(cost.dense_bytes, size_type{100} * 992 * 992 * 8);
    EXPECT_EQ(cost.csr_bytes,
              size_type{100} * 8760 * 8 + 993 * 4 + size_type{8760} * 4);
    EXPECT_EQ(cost.ell_bytes,
              size_type{100} * 9 * 992 * 8 + size_type{9} * 992 * 4);
}

TEST(Stats, StorageBytesAccessorsAgreeWithModel)
{
    auto csr = make_synthetic_batch(6, 5, StencilKind::nine_point, 7, {});
    auto ell = to_ell(csr);
    const auto stats = compute_stats(csr);
    const auto cost =
        storage_cost(stats.rows, stats.nnz, stats.max_nnz_per_row, 7);
    EXPECT_EQ(csr.storage_bytes(), cost.csr_bytes);
    EXPECT_EQ(ell.storage_bytes(), cost.ell_bytes);
}

TEST(Stats, SparseFormatsBeatDenseAndCrossOverEachOther)
{
    // Fig. 3: both sparse formats are far below dense at every batch
    // size. Between themselves, ELL wins for small batches (no row-
    // pointer array) while CSR's slightly smaller per-entry value storage
    // (no padding values) wins once the batch is large.
    // Real 32 x 31 nine-point pattern: 8554 stored nonzeros.
    const auto p = make_stencil_pattern(32, 31, StencilKind::nine_point);
    const index_type nnz = p.row_ptrs[p.rows()];
    EXPECT_EQ(nnz, 8554);
    for (size_type nb : {size_type{1}, size_type{10}, size_type{1000}}) {
        const auto cost = storage_cost(992, nnz, 9, nb);
        EXPECT_LT(cost.ell_bytes, cost.dense_bytes / 50);
        EXPECT_LT(cost.csr_bytes, cost.dense_bytes / 50);
    }
    // At batch size 1 the two sparse formats are within a few percent of
    // each other; at large batches CSR's unpadded values win slightly.
    const auto one = storage_cost(992, nnz, 9, 1);
    EXPECT_NEAR(static_cast<double>(one.ell_bytes),
                static_cast<double>(one.csr_bytes),
                0.05 * static_cast<double>(one.csr_bytes));
    const auto many = storage_cost(992, nnz, 9, 1000);
    EXPECT_GT(many.ell_bytes, many.csr_bytes);
}

TEST(Stats, PrintPatternShowsDiagonal)
{
    auto csr = make_synthetic_batch(4, 4, StencilKind::five_point, 1, {});
    std::ostringstream os;
    print_pattern(os, csr, 16);
    const auto text = os.str();
    EXPECT_EQ(text[0], '*');  // (0,0) occupied
    EXPECT_NE(text.find('.'), std::string::npos);
}

TEST(ExtractDiagonal, CsrAndEllAgree)
{
    auto csr = make_synthetic_batch(7, 6, StencilKind::nine_point, 3, {});
    auto ell = to_ell(csr);
    std::vector<real_type> d1(static_cast<std::size_t>(csr.rows()));
    std::vector<real_type> d2(static_cast<std::size_t>(csr.rows()));
    for (size_type b = 0; b < 3; ++b) {
        extract_diagonal(csr.entry(b),
                         VecView<real_type>{d1.data(), csr.rows()});
        extract_diagonal(ell.entry(b),
                         VecView<real_type>{d2.data(), csr.rows()});
        EXPECT_EQ(d1, d2);
        for (const auto v : d1) {
            EXPECT_GT(v, 0.0);  // diagonally dominant generator
        }
    }
}

TEST(BatchSellp, SpmvMatchesCsrOnIrregularPattern)
{
    // A pattern with one long row: SELL-P pads only that row's slice.
    const index_type n = 70;
    std::vector<index_type> row_ptrs(static_cast<std::size_t>(n) + 1, 0);
    std::vector<index_type> col_idxs;
    for (index_type r = 0; r < n; ++r) {
        if (r == 5) {
            for (index_type c = 0; c < 40; ++c) {
                col_idxs.push_back(c);
            }
        } else {
            col_idxs.push_back(r);
            if (r + 1 < n) {
                col_idxs.push_back(r + 1);
            }
        }
        row_ptrs[static_cast<std::size_t>(r) + 1] =
            static_cast<index_type>(col_idxs.size());
    }
    BatchCsr<real_type> csr(2, n, row_ptrs, col_idxs);
    Rng rng(77);
    for (size_type b = 0; b < 2; ++b) {
        for (index_type k = 0; k < csr.nnz_per_entry(); ++k) {
            csr.values(b)[k] = rng.uniform(-1.0, 1.0);
        }
    }
    auto sellp = to_sellp(csr, 32);
    const auto x = random_vec(n, 9);
    for (size_type b = 0; b < 2; ++b) {
        std::vector<real_type> y_csr(static_cast<std::size_t>(n));
        std::vector<real_type> y_sellp(static_cast<std::size_t>(n));
        spmv(csr.entry(b), ConstVecView<real_type>{x.data(), n},
             VecView<real_type>{y_csr.data(), n});
        spmv(sellp.entry(b), ConstVecView<real_type>{x.data(), n},
             VecView<real_type>{y_sellp.data(), n});
        for (index_type i = 0; i < n; ++i) {
            ASSERT_NEAR(y_sellp[static_cast<std::size_t>(i)],
                        y_csr[static_cast<std::size_t>(i)], 1e-13);
        }
    }
    // The long row only inflates its own slice: slice 0 width 40, the
    // others 2.
    EXPECT_EQ(sellp.slice_sets()[1] - sellp.slice_sets()[0], 40);
    EXPECT_EQ(sellp.slice_sets()[2] - sellp.slice_sets()[1], 2);
}

TEST(BatchSellp, DegeneratesToEllForUniformStencils)
{
    auto csr = make_synthetic_batch(8, 8, StencilKind::nine_point, 2, {});
    auto ell = to_ell(csr);
    auto sellp = to_sellp(csr, 64);  // one slice covers the whole matrix
    EXPECT_EQ(sellp.stored_per_entry(), ell.stored_per_entry());
    const auto x = random_vec(csr.rows(), 21);
    std::vector<real_type> y1(static_cast<std::size_t>(csr.rows()));
    std::vector<real_type> y2(static_cast<std::size_t>(csr.rows()));
    spmv(ell.entry(1), ConstVecView<real_type>{x.data(), csr.rows()},
         VecView<real_type>{y1.data(), csr.rows()});
    spmv(sellp.entry(1), ConstVecView<real_type>{x.data(), csr.rows()},
         VecView<real_type>{y2.data(), csr.rows()});
    for (index_type i = 0; i < csr.rows(); ++i) {
        ASSERT_NEAR(y1[static_cast<std::size_t>(i)],
                    y2[static_cast<std::size_t>(i)], 1e-13);
    }
}

TEST(BatchSellp, SlicedPaddingBeatsEllOnSkewedRows)
{
    // With one dense row, ELL pads EVERY row to 40; SELL-P only one slice.
    const index_type n = 256;
    std::vector<index_type> row_ptrs(static_cast<std::size_t>(n) + 1, 0);
    std::vector<index_type> col_idxs;
    for (index_type r = 0; r < n; ++r) {
        if (r == 0) {
            for (index_type c = 0; c < 40; ++c) {
                col_idxs.push_back(c);
            }
        } else {
            col_idxs.push_back(r);
        }
        row_ptrs[static_cast<std::size_t>(r) + 1] =
            static_cast<index_type>(col_idxs.size());
    }
    BatchCsr<real_type> csr(4, n, row_ptrs, col_idxs);
    auto ell = to_ell(csr);
    auto sellp = to_sellp(csr, 32);
    EXPECT_LT(sellp.storage_bytes(), ell.storage_bytes() / 4);
}

TEST(BatchSellp, ExtractDiagonalMatchesCsr)
{
    auto csr = make_synthetic_batch(9, 7, StencilKind::nine_point, 2, {});
    auto sellp = to_sellp(csr, 16);
    std::vector<real_type> d1(static_cast<std::size_t>(csr.rows()));
    std::vector<real_type> d2(static_cast<std::size_t>(csr.rows()));
    extract_diagonal(csr.entry(1),
                     VecView<real_type>{d1.data(), csr.rows()});
    extract_diagonal(sellp.entry(1),
                     VecView<real_type>{d2.data(), csr.rows()});
    EXPECT_EQ(d1, d2);
}

TEST(BatchSellp, ValidatesShape)
{
    EXPECT_THROW(BatchSellp<real_type>(1, 4, 2, {0, 1}, {0, 0}),
                 DimensionMismatch);  // slice_sets too short
    EXPECT_THROW(BatchSellp<real_type>(1, 4, 2, {0, 1, 1}, {0}),
                 DimensionMismatch);  // col_idxs size mismatch
    EXPECT_THROW(BatchSellp<real_type>(1, 4, 0, {0, 1, 1}, {0, 0}),
                 BadArgument);  // zero slice size
}

TEST(BatchDense, StorageAndSpmv)
{
    BatchDense<real_type> dense(2, 3, 3);
    EXPECT_EQ(dense.storage_bytes(), 2 * 3 * 3 * 8);
    auto d = dense.entry(1);
    d(0, 0) = 2.0;
    d(1, 2) = -1.0;
    std::vector<real_type> x{1, 2, 3};
    std::vector<real_type> y(3);
    spmv(ConstDenseView<real_type>(d), ConstVecView<real_type>{x.data(), 3},
         VecView<real_type>{y.data(), 3});
    EXPECT_EQ(y[0], 2.0);
    EXPECT_EQ(y[1], -3.0);
    EXPECT_EQ(y[2], 0.0);
}

}  // namespace
}  // namespace bsis
