// Batched Chebyshev iteration kernel.
//
// A reduction-free polynomial solver: per iteration it needs NO dot
// products -- on the GPU that removes the block-wide synchronizations that
// dominate the fused Krylov kernels' iteration time, at the price of
// needing a-priori spectral bounds [eig_min, eig_max] of the
// (preconditioned) operator. The bench/solver-comparison paths derive the
// bounds from Gershgorin discs of the Jacobi-scaled matrix.
#pragma once

#include <cmath>
#include <vector>

#include "blas/kernels.hpp"
#include "core/workspace.hpp"
#include "obs/telemetry.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace bsis {

/// Scratch vectors: r, z, p, q.
inline constexpr int chebyshev_work_vectors = 4;

/// Spectral interval of the preconditioned operator; must satisfy
/// 0 < eig_min <= eig_max (Chebyshev requires a definite real interval).
struct ChebyshevBounds {
    real_type eig_min = 0.5;
    real_type eig_max = 1.5;
};

/// Gershgorin-disc bounds of the (optionally Jacobi-scaled) operator for
/// one matrix view. With `diag_scaled` the interval brackets
/// diag(A)^-1 A: [1 - max_i R_i/|a_ii|, 1 + max_i R_i/|a_ii|]; without it,
/// A itself: [min_i(a_ii - R_i), max_i(a_ii + R_i)]. The lower bound is
/// clamped to `floor` (Chebyshev needs a positive interval; for the
/// diagonally dominant collision matrices the disc bound is already
/// positive). The off-diagonal radius is estimated with an all-ones probe
/// (exact for one-signed off-diagonals, as in these stencils).
template <typename MatrixView>
ChebyshevBounds gershgorin_bounds(const MatrixView& a, Workspace& ws,
                                  int scratch_slot, bool diag_scaled = true,
                                  real_type floor = real_type{0.05})
{
    auto diag = ws.slot(scratch_slot);
    extract_diagonal(a, diag);
    auto ones = ws.slot(scratch_slot + 1);
    auto rowsum = ws.slot(scratch_slot + 2);
    blas::fill(ones, real_type{1});
    spmv(a, ConstVecView<real_type>(ones), rowsum);
    ChebyshevBounds bounds;
    if (diag_scaled) {
        real_type radius = 0;
        for (index_type i = 0; i < diag.len; ++i) {
            BSIS_ENSURE_ARG(diag[i] != real_type{0},
                            "zero diagonal in Gershgorin bound");
            radius = std::max(radius,
                              std::abs((rowsum[i] - diag[i]) / diag[i]));
        }
        bounds.eig_min = std::max(floor, 1 - radius);
        bounds.eig_max = 1 + radius;
        return bounds;
    }
    real_type lo = diag.len > 0 ? diag[0] : real_type{1};
    real_type hi = lo;
    for (index_type i = 0; i < diag.len; ++i) {
        const real_type radius = std::abs(rowsum[i] - diag[i]);
        lo = std::min(lo, diag[i] - radius);
        hi = std::max(hi, diag[i] + radius);
    }
    bounds.eig_min = std::max(floor, lo);
    bounds.eig_max = std::max(bounds.eig_min, hi);
    return bounds;
}

/// Preconditioned Chebyshev iteration; `prec` should be the Jacobi
/// preconditioner matching the bounds' diagonal scaling. `history`, when
/// non-null, receives the residual norm at the top of every iteration
/// (same contract as `bicgstab_kernel`).
template <typename MatrixView, typename Prec, typename Stop>
EntryResult chebyshev_kernel(const MatrixView& a, ConstVecView<real_type> b,
                             VecView<real_type> x, const Prec& prec,
                             const Stop& stop, int max_iters,
                             const ChebyshevBounds& bounds, Workspace& ws,
                             int work_offset = 0,
                             std::vector<real_type>* history = nullptr)
{
    BSIS_ENSURE_ARG(bounds.eig_min > 0 &&
                        bounds.eig_max >= bounds.eig_min,
                    "Chebyshev needs 0 < eig_min <= eig_max");
    auto r = ws.slot(work_offset + 0);
    auto z = ws.slot(work_offset + 1);
    auto p = ws.slot(work_offset + 2);
    auto q = ws.slot(work_offset + 3);

    const real_type theta = (bounds.eig_max + bounds.eig_min) / 2;
    const real_type delta = (bounds.eig_max - bounds.eig_min) / 2;
    const real_type b_norm = blas::nrm2(b);

    obs::traced(obs::Phase::spmv, "spmv", [&] { spmv(a, ConstVecView<real_type>(x), r); });
    blas::axpby(real_type{1}, b, real_type{-1}, r);
    real_type r_norm = obs::traced(
        obs::Phase::reduction, "reduction",
        [&] { return blas::nrm2(ConstVecView<real_type>(r)); });
    const real_type r0 = r_norm;

    if (history != nullptr) {
        history->clear();
        history->push_back(r_norm);
    }
    real_type alpha = 0;
    for (int iter = 0; iter < max_iters; ++iter) {
        if (stop.done(r_norm, b_norm)) {
            return {iter, r_norm, true, FailureClass::converged};
        }
        if (!std::isfinite(r_norm)) {
            return {iter, r_norm, false, FailureClass::non_finite};
        }
        obs::traced(obs::Phase::precond, "precond_apply",
                    [&] { prec.apply(ConstVecView<real_type>(r), z); });
        if (iter == 0) {
            blas::copy(ConstVecView<real_type>(z), p);
            alpha = 1 / theta;
        } else {
            const real_type beta =
                iter == 1 ? real_type{0.5} * (delta * alpha) * (delta * alpha)
                          : (delta * alpha / 2) * (delta * alpha / 2);
            alpha = 1 / (theta - beta / alpha);
            obs::traced(obs::Phase::update, "update", [&] {
                blas::axpby(real_type{1}, ConstVecView<real_type>(z), beta,
                            p);
            });
        }
        blas::axpy(alpha, ConstVecView<real_type>(p), x);
        obs::traced(obs::Phase::spmv, "spmv",
                    [&] { spmv(a, ConstVecView<real_type>(p), q); });
        obs::traced(obs::Phase::update, "update",
                    [&] { blas::axpy(-alpha, ConstVecView<real_type>(q), r); });
        r_norm = obs::traced(obs::Phase::reduction, "reduction", [&] {
            return blas::nrm2(ConstVecView<real_type>(r));
        });
        if (history != nullptr) {
            history->push_back(r_norm);
        }
    }
    {
        const bool done = stop.done(r_norm, b_norm);
        return {max_iters, r_norm, done,
                classify_exhausted(r_norm, r0, done)};
    }
}

}  // namespace bsis
