file(REMOVE_RECURSE
  "CMakeFiles/bench_tolerance_study.dir/bench_tolerance_study.cpp.o"
  "CMakeFiles/bench_tolerance_study.dir/bench_tolerance_study.cpp.o.d"
  "bench_tolerance_study"
  "bench_tolerance_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tolerance_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
