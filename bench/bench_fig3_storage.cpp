// Fig. 3 of the paper: storage cost of BatchDense vs BatchCsr vs BatchEll
// vs BatchSellp as a function of batch size, for the XGC matrix shape
// (992 rows, 9-point stencil). Both the analytic formulas and the bytes
// actually allocated by the format classes are reported (they must agree;
// the test suite checks this too). For the uniform stencil pattern SELL-P
// degenerates to ELL plus the slice-set prefix array, which the table
// makes visible.
#include <iostream>

#include "common.hpp"
#include "matrix/conversions.hpp"
#include "matrix/stats.hpp"
#include "matrix/stencil.hpp"

int main()
{
    using namespace bsis;

    const auto pattern = make_stencil_pattern(32, 31,
                                              StencilKind::nine_point);
    const index_type nnz = pattern.row_ptrs[pattern.rows()];

    Table table({"num_matrices", "dense_MiB", "csr_MiB", "ell_MiB",
                 "sellp_MiB", "csr_over_ell"});
    const double mib = 1024.0 * 1024.0;
    for (size_type nb : {1, 10, 100, 1000, 10000}) {
        const auto cost = storage_cost(pattern.rows(), nnz, 9, nb);
        table.new_row()
            .add(nb)
            .add(static_cast<double>(cost.dense_bytes) / mib, 4)
            .add(static_cast<double>(cost.csr_bytes) / mib, 4)
            .add(static_cast<double>(cost.ell_bytes) / mib, 4)
            .add(static_cast<double>(cost.sellp_bytes) / mib, 4)
            .add(static_cast<double>(cost.csr_bytes) /
                     static_cast<double>(cost.ell_bytes),
                 3);
    }
    bench::emit("fig3_storage",
                "Fig. 3: batch matrix storage cost (992 rows, 9-pt stencil)",
                table);

    // Allocated-bytes cross-check of the analytic SELL-P model: convert an
    // actual CSR batch and compare against the formula. The model pads
    // every slice to the global max row length, so it bounds the actual
    // allocation from above; slices of short boundary rows come in under.
    const size_type check_nb = 4;
    BatchCsr<real_type> csr(check_nb, pattern.rows(), pattern.row_ptrs,
                            pattern.col_idxs);
    const auto sellp = to_sellp(csr, 32);
    const auto model = storage_cost(pattern.rows(), nnz, 9, check_nb);
    std::cout << "\nsellp allocated bytes: " << sellp.storage_bytes()
              << "  (uniform-pattern model bound: " << model.sellp_bytes
              << ")\n";
    if (sellp.storage_bytes() > model.sellp_bytes) {
        std::cerr << "FAIL: allocated SELL-P bytes exceed the model bound\n";
        return 1;
    }

    std::cout << "\nShape check (paper: sparse formats amortize the shared "
                 "pattern; dense is ~100x larger)\n";
    return 0;
}
