#include "core/tuning.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bsis {

index_type ell_block_size(index_type rows, index_type warp_size,
                          index_type max_block_size)
{
    const index_type rounded =
        (rows + warp_size - 1) / warp_size * warp_size;
    return std::clamp(rounded, warp_size, max_block_size);
}

index_type csr_block_size(index_type rows, index_type warp_size,
                          index_type max_block_size)
{
    // One warp per row, up to the block-size limit; more rows than warps
    // simply loop.
    const index_type wanted = rows * warp_size;
    return std::clamp(wanted, warp_size, max_block_size);
}

TuningChoice tune(const MatrixStats& stats, index_type warp_size,
                  index_type max_block_size)
{
    BSIS_ENSURE_ARG(warp_size > 0, "warp size must be positive");
    TuningChoice choice;
    const double padded =
        static_cast<double>(stats.max_nnz_per_row) * stats.rows;
    choice.ell_padding_overhead =
        stats.nnz == 0 ? 0.0 : padded / static_cast<double>(stats.nnz) - 1.0;

    // ELL pays off when padding is modest AND rows are short relative to a
    // warp (CSR's warp-per-row reduction would leave most lanes idle).
    const bool low_padding = choice.ell_padding_overhead < 0.3;
    const bool short_rows = stats.max_nnz_per_row <= warp_size;
    if (low_padding && short_rows) {
        choice.format = BatchFormat::ell;
        choice.block_size =
            ell_block_size(stats.rows, warp_size, max_block_size);
        choice.reason =
            "uniform short rows: thread-per-row ELL keeps warps full";
    } else if (low_padding) {
        choice.format = BatchFormat::ell;
        choice.block_size =
            ell_block_size(stats.rows, warp_size, max_block_size);
        choice.reason = "uniform rows: ELL padding overhead is low";
    } else {
        choice.format = BatchFormat::csr;
        choice.block_size =
            csr_block_size(stats.rows, warp_size, max_block_size);
        choice.reason =
            "irregular rows: CSR avoids excessive ELL padding";
    }
    return choice;
}

}  // namespace bsis
