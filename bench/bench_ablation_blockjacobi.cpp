// Ablation: scalar Jacobi vs block Jacobi preconditioning.
//
// The paper's batched-preconditioner references [4], [5] build block-
// Jacobi machinery; its own evaluation uses the SCALAR Jacobi. This
// ablation measures what block sizes buy on the collision matrices:
// iteration counts drop slowly with block size while the apply cost grows
// linearly -- the scalar choice is the right one for 9-point stencils.
#include <iostream>

#include "common.hpp"

int main()
{
    using namespace bsis;
    using bsis::bench::XgcBatch;

    const size_type nbatch = bench::quick_mode() ? 32 : 128;
    XgcBatch problem(nbatch);
    auto ell = to_ell(problem.a);

    Table table({"preconditioner", "mean_iters", "max_iters",
                 "apply_flops_per_row", "host_ms"});
    const auto run = [&](const char* name, PrecondType precond,
                         int block_size) {
        SolverSettings s;
        s.precond = precond;
        s.block_jacobi_size = block_size;
        s.tolerance = 1e-10;
        s.max_iterations = 500;
        BatchVector<real_type> x(nbatch, problem.a.rows());
        const auto result = solve_batch(ell, problem.rhs(), x, s);
        table.new_row()
            .add(name)
            .add(result.log.mean_iterations(), 4)
            .add(result.log.max_iterations())
            .add(precond == PrecondType::identity
                     ? 0
                     : 2 * std::max(block_size, 1))
            .add(result.wall_seconds * 1e3, 4);
        if (!result.log.all_converged()) {
            std::cerr << "WARNING: " << name << " did not converge\n";
        }
    };
    run("identity", PrecondType::identity, 1);
    run("jacobi (scalar)", PrecondType::jacobi, 1);
    run("block-jacobi(2)", PrecondType::block_jacobi, 2);
    run("block-jacobi(4)", PrecondType::block_jacobi, 4);
    run("block-jacobi(8)", PrecondType::block_jacobi, 8);
    run("block-jacobi(16)", PrecondType::block_jacobi, 16);

    bench::emit("ablation_blockjacobi",
                "Ablation: preconditioner strength vs apply cost on the "
                "collision matrices (mixed ion+electron batch)",
                table);
    std::cout << "\nReading guide: on these diagonally dominant stencil "
                 "matrices, larger blocks\nbarely reduce iterations while "
                 "the apply cost grows ~linearly -- supporting\nthe "
                 "paper's scalar-Jacobi choice.\n";
    return 0;
}
