// Batched collision-kernel workload: many spatial mesh nodes, two species.
//
// The proxy app is parallelized over configuration-space mesh nodes
// (embarrassingly parallel); at each node, one implicit collision step is
// taken for every species. Each (node, species) pair contributes one
// linear system per Picard iteration -- this class owns those
// distributions, generates per-node plasma profiles, and assembles the
// batched matrices. Batches contain equal numbers of ion and electron
// systems, interleaved, exactly like the paper's evaluation batches.
#pragma once

#include <vector>

#include "blas/batch_vector.hpp"
#include "matrix/batch_csr.hpp"
#include "util/types.hpp"
#include "xgc/collision_operator.hpp"
#include "xgc/distribution.hpp"
#include "xgc/grid.hpp"
#include "xgc/species.hpp"

namespace bsis::xgc {

struct WorkloadParams {
    index_type n_vpar = 32;   ///< paper grid: 32 x 31 = 992 rows
    index_type n_vperp = 31;
    size_type num_mesh_nodes = 8;
    bool include_ions = true;
    bool include_electrons = true;
    /// Number of ion species (main ion + impurities); the paper's proxy
    /// uses 1, future XGC targets ~10 (Section II-A).
    int num_ion_species = 1;
    /// Reference density in the code's distribution units. The paper's
    /// XGC distributions are physically scaled; with an ABSOLUTE linear
    /// tolerance of 1e-10 the magnitude of f sets where the warm-started
    /// iteration counts floor out (Table III).
    real_type reference_density = 1.0e4;
    /// Relative spread of the per-node plasma profiles.
    real_type density_variation = 0.15;
    real_type temperature_variation = 0.25;
    real_type flow_variation = 0.05;
    std::uint64_t seed = 7;
};

class CollisionWorkload {
public:
    explicit CollisionWorkload(const WorkloadParams& params);

    const VelocityGrid& grid() const { return grid_; }
    size_type num_mesh_nodes() const { return params_.num_mesh_nodes; }
    size_type num_species() const
    {
        return static_cast<size_type>(species_.size());
    }
    size_type num_systems() const
    {
        return num_mesh_nodes() * num_species();
    }

    /// Species of batch system `sys` (systems are node-major,
    /// species-minor: sys = node * num_species + s).
    const SpeciesParams& system_species(size_type sys) const
    {
        return species_[static_cast<std::size_t>(sys % num_species())];
    }

    /// Current (accepted) distributions, one per system.
    BatchVector<real_type>& distributions() { return f_; }
    const BatchVector<real_type>& distributions() const { return f_; }

    /// Allocates a batch matrix with the shared 9-point pattern.
    BatchCsr<real_type> make_matrix_batch() const;

    /// Assembles A_sys = I - dt * C for every system into `a` (which must
    /// come from make_matrix_batch()). The operator's Maxwellian anchor
    /// (n, u, T) is taken from `anchor` -- the pre-step distribution f^n,
    /// whose invariants the exact collision operator preserves -- while
    /// the Rosenbluth-like shell screening tracks the SHAPE of the current
    /// Picard `iterate`. Pass the same vector for both to linearize fully
    /// at the iterate.
    void assemble_batch(const BatchVector<real_type>& iterate,
                        const BatchVector<real_type>& anchor, real_type dt,
                        BatchCsr<real_type>& a) const;

    /// Moments of one system of an iterate.
    PlasmaState system_moments(const BatchVector<real_type>& iterate,
                               size_type sys) const
    {
        return moments(grid_, iterate.entry(sys));
    }

private:
    WorkloadParams params_;
    VelocityGrid grid_;
    std::vector<SpeciesParams> species_;
    /// One operator per species; mutable because assembly installs the
    /// per-system background screening into the operator (scratch state).
    mutable std::vector<CollisionOperator> operators_;
    BatchVector<real_type> f_;
};

}  // namespace bsis::xgc
