// Observability tier (`obs` ctest label): the metrics registry, the
// Chrome-trace session, the convergence-history recorder, and their
// integration into the three execution paths (scalar OpenMP, SIMD
// batch-lockstep, simulated GPU).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/solver.hpp"
#include "exec/executor.hpp"
#include "gpusim/profile.hpp"
#include "gpusim/scheduler.hpp"
#include "matrix/conversions.hpp"
#include "matrix/stencil.hpp"
#include "obs/convergence.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace bsis {
namespace {

// ---------------------------------------------------------------------
// Minimal JSON parser, just enough to validate the emitted documents.
// ---------------------------------------------------------------------

struct JsonValue {
    enum class Type { null, boolean, number, string, array, object };
    Type type = Type::null;
    bool boolean = false;
    double number = 0;
    std::string string_value;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue* find(const std::string& key) const
    {
        for (const auto& [k, v] : object) {
            if (k == key) {
                return &v;
            }
        }
        return nullptr;
    }
};

class JsonParser {
public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    /// Parses the whole document; returns false on any syntax error or
    /// trailing garbage.
    bool parse(JsonValue& out)
    {
        pos_ = 0;
        if (!parse_value(out)) {
            return false;
        }
        skip_ws();
        return pos_ == text_.size();
    }

private:
    void skip_ws()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool consume(char c)
    {
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool parse_string(std::string& out)
    {
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != '"') {
            return false;
        }
        ++pos_;
        out.clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size()) {
                    return false;
                }
                const char esc = text_[pos_++];
                switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u':
                    if (pos_ + 4 > text_.size()) {
                        return false;
                    }
                    pos_ += 4;  // validated documents stay ASCII
                    out += '?';
                    break;
                default: return false;
                }
            } else {
                out += c;
            }
        }
        if (pos_ < text_.size() && text_[pos_] == '"') {
            ++pos_;
            return true;
        }
        return false;
    }

    bool parse_value(JsonValue& out)
    {
        skip_ws();
        if (pos_ >= text_.size()) {
            return false;
        }
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out.type = JsonValue::Type::object;
            skip_ws();
            if (consume('}')) {
                return true;
            }
            while (true) {
                std::string key;
                JsonValue value;
                if (!parse_string(key) || !consume(':') ||
                    !parse_value(value)) {
                    return false;
                }
                out.object.emplace_back(std::move(key), std::move(value));
                if (consume(',')) {
                    continue;
                }
                return consume('}');
            }
        }
        if (c == '[') {
            ++pos_;
            out.type = JsonValue::Type::array;
            skip_ws();
            if (consume(']')) {
                return true;
            }
            while (true) {
                JsonValue value;
                if (!parse_value(value)) {
                    return false;
                }
                out.array.push_back(std::move(value));
                if (consume(',')) {
                    continue;
                }
                return consume(']');
            }
        }
        if (c == '"') {
            out.type = JsonValue::Type::string;
            return parse_string(out.string_value);
        }
        if (text_.compare(pos_, 4, "true") == 0) {
            out.type = JsonValue::Type::boolean;
            out.boolean = true;
            pos_ += 4;
            return true;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            out.type = JsonValue::Type::boolean;
            out.boolean = false;
            pos_ += 5;
            return true;
        }
        if (text_.compare(pos_, 4, "null") == 0) {
            out.type = JsonValue::Type::null;
            pos_ += 4;
            return true;
        }
        char* end = nullptr;
        out.number = std::strtod(text_.c_str() + pos_, &end);
        if (end == text_.c_str() + pos_) {
            return false;
        }
        out.type = JsonValue::Type::number;
        pos_ = static_cast<std::size_t>(end - text_.c_str());
        return true;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

bool parse_json(const std::string& text, JsonValue& out)
{
    return JsonParser(text).parse(out);
}

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

TEST(Metrics, CountersGaugesHistogramsRoundTrip)
{
    obs::MetricsRegistry reg;
    const auto c = reg.counter("solve.batches");
    const auto g = reg.gauge("solve.wall");
    const auto h = reg.histogram("solve.iters");
    reg.add(c);
    reg.add(c, 4);
    reg.set(g, 0.5);
    reg.set(g, 2.5);
    for (int i = 1; i <= 100; ++i) {
        reg.observe(h, static_cast<double>(i));
    }
    const auto snap = reg.snapshot();
    EXPECT_EQ(snap.counter("solve.batches"), 5);
    EXPECT_TRUE(snap.gauge_set("solve.wall"));
    EXPECT_DOUBLE_EQ(snap.gauge("solve.wall"), 2.5);
    const auto summary = snap.histogram("solve.iters");
    EXPECT_EQ(summary.count, 100);
    EXPECT_DOUBLE_EQ(summary.sum, 5050.0);
    EXPECT_DOUBLE_EQ(summary.max, 100.0);
    EXPECT_NEAR(summary.mean(), 50.5, 1e-12);
    EXPECT_NEAR(summary.p50, 50.0, 2.0);
    EXPECT_NEAR(summary.p95, 95.0, 2.0);
}

TEST(Metrics, HistogramQuantileEdgeCases)
{
    obs::MetricsRegistry reg;

    // Zero samples: everything is the neutral zero.
    const auto h0 = reg.histogram("empty");
    (void)h0;
    const auto empty = reg.snapshot().histogram("empty");
    EXPECT_EQ(empty.count, 0);
    EXPECT_DOUBLE_EQ(empty.p50, 0.0);
    EXPECT_DOUBLE_EQ(empty.p95, 0.0);

    // One sample: every quantile IS that sample.
    const auto h1 = reg.histogram("one");
    reg.observe(h1, 42.0);
    const auto one = reg.snapshot().histogram("one");
    EXPECT_EQ(one.count, 1);
    EXPECT_DOUBLE_EQ(one.p50, 42.0);
    EXPECT_DOUBLE_EQ(one.p95, 42.0);
    EXPECT_DOUBLE_EQ(one.max, 42.0);

    // Two samples: type-7 linear interpolation between them.
    const auto h2 = reg.histogram("two");
    reg.observe(h2, 1.0);
    reg.observe(h2, 3.0);
    const auto two = reg.snapshot().histogram("two");
    EXPECT_DOUBLE_EQ(two.p50, 2.0);   // 1 + 0.50 * (3 - 1)
    EXPECT_DOUBLE_EQ(two.p95, 2.9);   // 1 + 0.95 * (3 - 1)

    // All-equal samples: quantiles are exact, no interpolation artifact.
    const auto he = reg.histogram("equal");
    for (int i = 0; i < 17; ++i) {
        reg.observe(he, 5.0);
    }
    const auto equal = reg.snapshot().histogram("equal");
    EXPECT_DOUBLE_EQ(equal.p50, 5.0);
    EXPECT_DOUBLE_EQ(equal.p95, 5.0);
}

TEST(Metrics, RegistrationIsIdempotentAndKindCollisionsThrow)
{
    obs::MetricsRegistry reg;
    const auto a = reg.counter("x");
    const auto b = reg.counter("x");
    EXPECT_EQ(a, b);
    EXPECT_NE(reg.counter("y"), a);
    EXPECT_THROW(reg.gauge("x"), std::runtime_error);
    EXPECT_THROW(reg.histogram("x"), std::runtime_error);
}

TEST(Metrics, ShardedRecordingMergesExactlyAcrossThreads)
{
    obs::MetricsRegistry reg;
    const auto c = reg.counter("hits");
    const auto h = reg.histogram("samples");
    constexpr int threads = 4;
    constexpr int per_thread = 20000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&reg, c, h] {
            for (int i = 0; i < per_thread; ++i) {
                reg.add(c);
                reg.observe(h, 1.0);
            }
        });
    }
    for (auto& th : pool) {
        th.join();
    }
    const auto snap = reg.snapshot();
    EXPECT_EQ(snap.counter("hits"), threads * per_thread);
    const auto summary = snap.histogram("samples");
    EXPECT_EQ(summary.count, threads * per_thread);
    EXPECT_DOUBLE_EQ(summary.sum, 1.0 * threads * per_thread);
}

TEST(Metrics, GaugeMergeKeepsTheLatestWriteAcrossShards)
{
    obs::MetricsRegistry reg;
    const auto g = reg.gauge("last");
    std::thread([&reg, g] { reg.set(g, 1.0); }).join();
    std::thread([&reg, g] { reg.set(g, 7.0); }).join();
    EXPECT_DOUBLE_EQ(reg.snapshot().gauge("last"), 7.0);
}

TEST(Metrics, HistogramDecimationKeepsExactCountSumMax)
{
    obs::MetricsRegistry reg;
    const auto h = reg.histogram("big");
    const int n = 3 * obs::MetricsRegistry::histogram_shard_capacity;
    double sum = 0;
    for (int i = 0; i < n; ++i) {
        reg.observe(h, static_cast<double>(i % 1000));
        sum += i % 1000;
    }
    const auto summary = reg.snapshot().histogram("big");
    EXPECT_EQ(summary.count, n);
    EXPECT_DOUBLE_EQ(summary.sum, sum);
    EXPECT_DOUBLE_EQ(summary.max, 999.0);
    // Quantiles are estimates over the decimated reservoir; the uniform
    // 0..999 stream must still land in the right neighbourhood.
    EXPECT_NEAR(summary.p50, 500.0, 100.0);
    EXPECT_GT(summary.p95, summary.p50);
}

TEST(Metrics, ResetValuesKeepsRegistrations)
{
    obs::MetricsRegistry reg;
    const auto c = reg.counter("kept");
    reg.add(c, 9);
    reg.reset_values();
    auto snap = reg.snapshot();
    EXPECT_EQ(snap.counter("kept"), 0);
    EXPECT_EQ(reg.counter("kept"), c);  // same id after reset
    reg.add(c, 2);
    EXPECT_EQ(reg.snapshot().counter("kept"), 2);
}

TEST(Metrics, SnapshotJsonIsValidAndComplete)
{
    obs::MetricsRegistry reg;
    reg.add_named("c1", 3);
    reg.set_named("g1", 1.25);
    reg.observe_named("h1", 2.0);
    JsonValue doc;
    ASSERT_TRUE(parse_json(reg.snapshot_json(), doc));
    ASSERT_EQ(doc.type, JsonValue::Type::object);
    const auto* counters = doc.find("counters");
    const auto* gauges = doc.find("gauges");
    const auto* histograms = doc.find("histograms");
    ASSERT_NE(counters, nullptr);
    ASSERT_NE(gauges, nullptr);
    ASSERT_NE(histograms, nullptr);
    ASSERT_NE(counters->find("c1"), nullptr);
    EXPECT_DOUBLE_EQ(counters->find("c1")->number, 3.0);
    ASSERT_NE(gauges->find("g1"), nullptr);
    EXPECT_DOUBLE_EQ(gauges->find("g1")->number, 1.25);
    const auto* h1 = histograms->find("h1");
    ASSERT_NE(h1, nullptr);
    ASSERT_NE(h1->find("count"), nullptr);
    EXPECT_DOUBLE_EQ(h1->find("count")->number, 1.0);
}

// ---------------------------------------------------------------------
// TraceSession
// ---------------------------------------------------------------------

TEST(Trace, SpansNestAndMaterializeAsContainedIntervals)
{
    obs::TraceSession session;
    session.begin("outer", "test", 1);
    session.begin("inner", "test", 2);
    session.end();
    session.end();
    auto events = session.snapshot();
    ASSERT_EQ(events.size(), 2u);
    // end() materializes innermost-first.
    const auto& inner = events[0];
    const auto& outer = events[1];
    EXPECT_STREQ(inner.name, "inner");
    EXPECT_STREQ(outer.name, "outer");
    EXPECT_GE(inner.ts_us, outer.ts_us);
    EXPECT_LE(inner.ts_us + inner.dur_us,
              outer.ts_us + outer.dur_us + 1e-9);
    EXPECT_EQ(inner.pid, obs::TraceSession::host_pid);
    EXPECT_EQ(inner.arg, 2);
}

TEST(Trace, UnmatchedEndIsIgnored)
{
    obs::TraceSession session;
    session.end();  // no open span: must not crash or emit
    session.begin("only", "test");
    session.end();
    session.end();  // extra
    EXPECT_EQ(session.snapshot().size(), 1u);
    EXPECT_EQ(session.dropped(), 0);
}

TEST(Trace, ShardCapacityBoundsRetentionAndCountsDrops)
{
    obs::TraceSession session;
    session.set_shard_capacity(8);
    for (int i = 0; i < 50; ++i) {
        session.emit_complete("e", "test", obs::TraceSession::host_pid, 0,
                              static_cast<double>(i), 1.0);
    }
    EXPECT_EQ(session.snapshot().size(), 8u);
    EXPECT_EQ(session.dropped(), 42);
    session.clear();
    EXPECT_EQ(session.snapshot().size(), 0u);
    EXPECT_EQ(session.dropped(), 0);
}

TEST(Trace, ChromeTraceJsonIsValidSortedAndComplete)
{
    obs::TraceSession session;
    session.begin("a", "test");
    session.begin("b", "test");
    session.end();
    session.end();
    // A modeled device track under its own pid.
    session.emit_complete("block", "gpusim", obs::TraceSession::device_pid,
                          3, 10.0, 5.0, 42);
    session.emit_complete("block", "gpusim", obs::TraceSession::device_pid,
                          3, 2.0, 4.0, 41);

    JsonValue doc;
    ASSERT_TRUE(parse_json(session.chrome_trace_json(), doc));
    const auto* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->type, JsonValue::Type::array);
    ASSERT_EQ(events->array.size(), 4u);
    // Sorted by (pid, tid, ts); every event is a complete event with the
    // required fields.
    std::map<std::pair<double, double>, double> last_ts;
    for (const auto& e : events->array) {
        ASSERT_EQ(e.type, JsonValue::Type::object);
        ASSERT_NE(e.find("name"), nullptr);
        ASSERT_NE(e.find("ph"), nullptr);
        EXPECT_EQ(e.find("ph")->string_value, "X");
        ASSERT_NE(e.find("ts"), nullptr);
        ASSERT_NE(e.find("dur"), nullptr);
        ASSERT_NE(e.find("pid"), nullptr);
        ASSERT_NE(e.find("tid"), nullptr);
        const std::pair<double, double> track{e.find("pid")->number,
                                              e.find("tid")->number};
        const double ts = e.find("ts")->number;
        auto it = last_ts.find(track);
        if (it != last_ts.end()) {
            EXPECT_GE(ts, it->second) << "timestamps must be monotonic "
                                         "within one track";
        }
        last_ts[track] = ts;
    }
    // The device track kept both blocks, time-ordered.
    const auto& dev_first = events->array[2];
    EXPECT_DOUBLE_EQ(dev_first.find("pid")->number,
                     obs::TraceSession::device_pid);
    EXPECT_DOUBLE_EQ(dev_first.find("ts")->number, 2.0);
}

// ---------------------------------------------------------------------
// ConvergenceHistory
// ---------------------------------------------------------------------

TEST(ConvergenceHistory, RecordsTrajectoriesAndExactFinalState)
{
    obs::ConvergenceHistory history;
    EXPECT_FALSE(history.active());
    history.reset(2, 16);
    EXPECT_TRUE(history.active());
    for (int k = 0; k < 5; ++k) {
        history.record(0, k, std::pow(10.0, -k));
    }
    history.finalize(0, 5, 1e-11, true);
    history.finalize(1, 0, 0.0, false);
    ASSERT_EQ(history.points(0).size(), 5u);
    EXPECT_EQ(history.points(0).front().iteration, 0);
    EXPECT_DOUBLE_EQ(history.points(0).front().residual, 1.0);
    EXPECT_TRUE(history.finalized(0));
    EXPECT_TRUE(history.converged(0));
    EXPECT_EQ(history.final_point(0).iteration, 5);
    EXPECT_DOUBLE_EQ(history.final_point(0).residual, 1e-11);
    EXPECT_FALSE(history.converged(1));
    EXPECT_TRUE(history.points(1).empty());
}

TEST(ConvergenceHistory, DecimationBoundsMemoryAndKeepsAlignedPoints)
{
    obs::ConvergenceHistory history;
    const int capacity = 8;
    history.reset(1, capacity);
    for (int k = 0; k <= 1000; ++k) {
        history.record(0, k, 1.0 / (1.0 + k));
    }
    const auto& pts = history.points(0);
    ASSERT_LE(pts.size(), static_cast<std::size_t>(capacity));
    ASSERT_GE(pts.size(), 2u);
    const int stride = history.stride(0);
    EXPECT_GT(stride, 1);
    EXPECT_EQ(stride & (stride - 1), 0) << "stride must be a power of two";
    EXPECT_EQ(pts.front().iteration, 0);
    for (std::size_t i = 0; i < pts.size(); ++i) {
        EXPECT_EQ(pts[i].iteration % stride, 0);
        if (i > 0) {
            EXPECT_GT(pts[i].iteration, pts[i - 1].iteration);
        }
    }
}

// ---------------------------------------------------------------------
// Integration with the execution paths (global telemetry singletons).
// Tests restore the global switches so the order of tests cannot leak
// telemetry into unrelated cases.
// ---------------------------------------------------------------------

class GlobalTelemetryTest : public ::testing::Test {
protected:
    void SetUp() override { reset_all(); }
    void TearDown() override { reset_all(); }

    static void reset_all()
    {
        obs::set_metrics_enabled(false);
        obs::set_trace_enabled(false);
        obs::trace().clear();
        obs::trace().set_shard_capacity(1u << 20);
        obs::metrics().reset_values();
    }

    struct Problem {
        BatchCsr<real_type> a;
        BatchVector<real_type> b;
    };

    static Problem make_problem(size_type nbatch)
    {
        SyntheticStencilParams params;
        params.seed = 99;
        auto a = make_synthetic_batch(8, 7, StencilKind::nine_point, nbatch,
                                      params);
        BatchVector<real_type> b(nbatch, a.rows());
        Rng rng(7);
        for (size_type i = 0; i < nbatch; ++i) {
            for (auto& v : b.entry(i)) {
                v = rng.uniform(-1.0, 1.0);
            }
        }
        return {std::move(a), std::move(b)};
    }
};

TEST_F(GlobalTelemetryTest, DisabledTelemetryRecordsNothing)
{
    auto p = make_problem(4);
    SolverSettings settings;
    BatchVector<real_type> x(p.a.num_batch(), p.a.rows());
    const auto result = solve_batch(p.a, p.b, x, settings);
    EXPECT_TRUE(result.log.all_converged());
    EXPECT_FALSE(result.history.active());
    EXPECT_TRUE(obs::trace().snapshot().empty());
    const auto snap = obs::metrics().snapshot();
    EXPECT_EQ(snap.counter("solve.batches"), 0);
}

TEST_F(GlobalTelemetryTest, ScalarPathRecordsConvergenceHistory)
{
    auto p = make_problem(6);
    SolverSettings settings;
    settings.record_convergence = true;
    BatchVector<real_type> x(p.a.num_batch(), p.a.rows());
    const auto result = solve_batch(p.a, p.b, x, settings);
    ASSERT_TRUE(result.history.active());
    ASSERT_EQ(result.history.num_batch(), p.a.num_batch());
    for (size_type i = 0; i < p.a.num_batch(); ++i) {
        ASSERT_TRUE(result.history.finalized(i)) << "system " << i;
        EXPECT_EQ(result.history.converged(i), result.log.converged(i));
        EXPECT_EQ(result.history.final_point(i).iteration,
                  result.log.iterations(i));
        EXPECT_NEAR(result.history.final_point(i).residual,
                    result.log.residual_norm(i),
                    1e-12 * std::max<real_type>(
                                1.0, result.log.residual_norm(i)));
        const auto& pts = result.history.points(i);
        ASSERT_FALSE(pts.empty());
        EXPECT_EQ(pts.front().iteration, 0);
        // The trajectory ends at (or below) the tolerance it converged to.
        EXPECT_GT(pts.front().residual, 0.0);
    }
}

TEST_F(GlobalTelemetryTest, LockstepPathHistoryMatchesScalarPath)
{
    auto p = make_problem(10);
    SolverSettings settings;
    settings.record_convergence = true;
    BatchVector<real_type> x_scalar(p.a.num_batch(), p.a.rows());
    BatchVector<real_type> x_lock(p.a.num_batch(), p.a.rows());
    const auto scalar = solve_batch(p.a, p.b, x_scalar, settings);
    settings.lockstep_width = 8;
    const auto lock = solve_batch(p.a, p.b, x_lock, settings);
    ASSERT_TRUE(lock.history.active());
    for (size_type i = 0; i < p.a.num_batch(); ++i) {
        ASSERT_TRUE(lock.history.finalized(i)) << "system " << i;
        EXPECT_EQ(lock.history.converged(i), lock.log.converged(i));
        EXPECT_EQ(lock.history.final_point(i).iteration,
                  lock.log.iterations(i));
        const auto& pts = lock.history.points(i);
        ASSERT_FALSE(pts.empty());
        EXPECT_EQ(pts.front().iteration, 0);
        // Same initial residual as the scalar path records (identical
        // zero-guess start).
        EXPECT_NEAR(pts.front().residual,
                    scalar.history.points(i).front().residual,
                    1e-9 * std::max<real_type>(
                               1.0, pts.front().residual));
    }
}

TEST_F(GlobalTelemetryTest, SolveEmitsProperlyNestedPhaseSpans)
{
    obs::set_trace_enabled(true);
    auto p = make_problem(4);
    SolverSettings settings;
    BatchVector<real_type> x(p.a.num_batch(), p.a.rows());
    solve_batch(p.a, p.b, x, settings);
    settings.lockstep_width = 4;
    x.fill(real_type{0});
    solve_batch(p.a, p.b, x, settings);
    obs::set_trace_enabled(false);

    const auto events = obs::trace().snapshot();
    ASSERT_FALSE(events.empty());
    std::map<std::string, int> names;
    for (const auto& e : events) {
        names[e.name] += 1;
    }
    EXPECT_EQ(names["solve_batch"], 2);
    EXPECT_GE(names["solve_entry"], 4);
    EXPECT_GE(names["lockstep_group"], 1);
    EXPECT_GT(names["spmv"], 0);
    EXPECT_GT(names["reduction"], 0);
    EXPECT_GT(names["update"], 0);
    EXPECT_GT(names["precond_apply"], 0);

    // Spans on one host track must be properly nested: any two either
    // are disjoint or one contains the other (guaranteed by the span
    // stack; violated if begin/end ever unbalance).
    std::map<int, std::vector<const obs::TraceEvent*>> tracks;
    for (const auto& e : events) {
        tracks[e.tid].push_back(&e);
    }
    for (auto& [tid, track] : tracks) {
        std::sort(track.begin(), track.end(),
                  [](const obs::TraceEvent* a, const obs::TraceEvent* b) {
                      return a->ts_us < b->ts_us;
                  });
        for (std::size_t i = 1; i < track.size(); ++i) {
            const auto* prev = track[i - 1];
            const auto* cur = track[i];
            const double prev_end = prev->ts_us + prev->dur_us;
            const double cur_end = cur->ts_us + cur->dur_us;
            const bool disjoint = cur->ts_us >= prev_end - 1e-6;
            const bool nested = cur_end <= prev_end + 1e-6;
            EXPECT_TRUE(disjoint || nested)
                << "overlapping spans '" << prev->name << "' and '"
                << cur->name << "' on tid " << tid;
        }
    }

    // And the serialized document round-trips as valid JSON.
    JsonValue doc;
    ASSERT_TRUE(parse_json(obs::trace().chrome_trace_json(), doc));
    ASSERT_NE(doc.find("traceEvents"), nullptr);
    EXPECT_EQ(doc.find("traceEvents")->array.size(), events.size());
}

TEST_F(GlobalTelemetryTest, SolveRecordsMetricsWhenEnabled)
{
    obs::set_metrics_enabled(true);
    auto p = make_problem(6);
    SolverSettings settings;
    BatchVector<real_type> x(p.a.num_batch(), p.a.rows());
    const auto result = solve_batch(p.a, p.b, x, settings);
    obs::set_metrics_enabled(false);

    const auto snap = obs::metrics().snapshot();
    EXPECT_EQ(snap.counter("solve.batches"), 1);
    EXPECT_EQ(snap.counter("solve.systems"), 6);
    EXPECT_EQ(snap.counter("solve.iterations"),
              result.log.total_iterations());
    EXPECT_EQ(snap.counter("solve.unconverged"), 0);
    const auto iters = snap.histogram("solve.system_iterations");
    EXPECT_EQ(iters.count, 6);
    EXPECT_DOUBLE_EQ(iters.max,
                     static_cast<double>(result.log.max_iterations()));
    EXPECT_TRUE(snap.gauge_set("solve.last_wall_seconds"));
}

TEST_F(GlobalTelemetryTest, GpuExecutorEmitsDeviceTimelineAndMetrics)
{
    obs::set_trace_enabled(true);
    obs::set_metrics_enabled(true);
    auto p = make_problem(6);
    const auto ell = to_ell(p.a);
    SolverSettings settings;
    SimGpuExecutor exec(gpusim::v100());
    BatchVector<real_type> x(p.a.num_batch(), p.a.rows());
    settings.record_convergence = true;
    const auto report = exec.solve(ell, p.b, x, settings);
    obs::set_trace_enabled(false);
    obs::set_metrics_enabled(false);

    EXPECT_TRUE(report.log.all_converged());
    EXPECT_TRUE(report.history.active());
    // Device track: one kernel_launch plus one block span per system, all
    // inside the modeled timeline.
    int blocks = 0;
    int launches = 0;
    for (const auto& e : obs::trace().snapshot()) {
        if (e.pid != obs::TraceSession::device_pid) {
            continue;
        }
        if (std::string(e.name) == "block") {
            ++blocks;
            EXPECT_GE(e.ts_us, 0.0);
            EXPECT_GT(e.dur_us, 0.0);
            EXPECT_LE((e.ts_us + e.dur_us) * 1e-6,
                      report.kernel_seconds * (1.0 + 1e-9));
        } else if (std::string(e.name) == "kernel_launch") {
            ++launches;
        }
    }
    EXPECT_EQ(blocks, 6);
    EXPECT_EQ(launches, 1);

    const auto snap = obs::metrics().snapshot();
    EXPECT_EQ(snap.counter("gpusim.solves"), 1);
    EXPECT_TRUE(snap.gauge_set("gpusim.kernel_seconds"));
    ASSERT_TRUE(report.profiled);
    EXPECT_NEAR(snap.gauge("gpusim.warp_utilization"),
                report.profile.warp_utilization(), 1e-12);
    EXPECT_NEAR(snap.gauge("gpusim.l1_hit_rate"),
                report.profile.l1_hit_rate(), 1e-12);
}

TEST_F(GlobalTelemetryTest, LiveProfileAgreesWithSharedHelperWithin1Percent)
{
    // The executor's live profile and the Table II bench both route
    // through gpusim/profile.{hpp,cpp}; recomputing with the executor's
    // own inputs must reproduce its numbers (acceptance bound: 1%).
    auto p = make_problem(8);
    const auto ell = to_ell(p.a);
    SolverSettings settings;
    SimGpuExecutor exec(gpusim::v100());
    exec.set_profile(true);  // force the profile without global telemetry
    BatchVector<real_type> x(p.a.num_batch(), p.a.rows());
    const auto report = exec.solve(ell, p.b, x, settings);
    ASSERT_TRUE(report.profiled);
    EXPECT_EQ(report.profile.blocks_traced,
              SimGpuExecutor::profile_sample_blocks);

    const std::vector<index_type> empty;
    const gpusim::ProfilePattern pattern{
        gpusim::TracedFormat::ell, &empty,           &empty,
        &ell.col_idxs(),           ell.nnz_per_row(), ell.stored_per_entry()};
    const auto sizing = gpusim::profile_cache_sizing(
        exec.device(), report.storage, report.block_threads,
        static_cast<size_type>(ell.col_idxs().size()));
    std::vector<int> block_iters;
    for (size_type blk = 0;
         blk < std::min<size_type>(SimGpuExecutor::profile_sample_blocks,
                                   p.a.num_batch());
         ++blk) {
        block_iters.push_back(std::max(1, report.log.iterations(blk)));
    }
    const auto reference = gpusim::profile_bicgstab(
        exec.device(), report.storage, report.block_threads, pattern,
        p.a.rows(), block_iters, sizing);

    const auto near_rel = [](double a, double b) {
        return std::abs(a - b) <= 0.01 * std::max({std::abs(a),
                                                   std::abs(b), 1e-12});
    };
    EXPECT_TRUE(near_rel(report.profile.warp_utilization(),
                         reference.warp_utilization()))
        << report.profile.warp_utilization() << " vs "
        << reference.warp_utilization();
    EXPECT_TRUE(near_rel(report.profile.l1_hit_rate(),
                         reference.l1_hit_rate()))
        << report.profile.l1_hit_rate() << " vs "
        << reference.l1_hit_rate();
    EXPECT_TRUE(near_rel(report.profile.l2_hit_rate(),
                         reference.l2_hit_rate()))
        << report.profile.l2_hit_rate() << " vs "
        << reference.l2_hit_rate();
}

// ---------------------------------------------------------------------
// Scheduler timeline (the trace exporter's device track comes from it).
// ---------------------------------------------------------------------

TEST(SchedulerTimeline, MatchesScheduleBlocksAndPlacesBlocksConsistently)
{
    std::vector<double> durations;
    Rng rng(3);
    for (int i = 0; i < 37; ++i) {
        durations.push_back(rng.uniform(0.5, 2.0));
    }
    for (const auto policy : {gpusim::SchedulingPolicy::greedy_dynamic,
                              gpusim::SchedulingPolicy::wave_quantized}) {
        const int slots = 5;
        const auto summary =
            gpusim::schedule_blocks(durations, slots, policy);
        const auto timeline =
            gpusim::schedule_blocks_timeline(durations, slots, policy);
        EXPECT_DOUBLE_EQ(timeline.makespan_seconds,
                         summary.makespan_seconds);
        EXPECT_EQ(timeline.num_waves, summary.num_waves);
        ASSERT_EQ(timeline.blocks.size(), durations.size());
        double max_end = 0;
        std::map<int, std::vector<std::pair<double, double>>> by_slot;
        for (std::size_t i = 0; i < timeline.blocks.size(); ++i) {
            const auto& blk = timeline.blocks[i];
            EXPECT_NEAR(blk.end_seconds - blk.start_seconds, durations[i],
                        1e-12);
            EXPECT_GE(blk.slot, 0);
            EXPECT_LT(blk.slot, slots);
            by_slot[blk.slot].emplace_back(blk.start_seconds,
                                           blk.end_seconds);
            max_end = std::max(max_end, blk.end_seconds);
        }
        EXPECT_NEAR(max_end, timeline.makespan_seconds, 1e-12);
        // No two blocks overlap on one slot.
        for (auto& [slot, intervals] : by_slot) {
            std::sort(intervals.begin(), intervals.end());
            for (std::size_t i = 1; i < intervals.size(); ++i) {
                EXPECT_GE(intervals[i].first,
                          intervals[i - 1].second - 1e-12)
                    << "slot " << slot << " double-booked";
            }
        }
    }
}

TEST(SchedulerTimeline, WaveQuantizedStartsWholeWavesTogether)
{
    const std::vector<double> durations{3.0, 1.0, 2.0, 5.0, 1.0};
    const auto timeline = gpusim::schedule_blocks_timeline(
        durations, 2, gpusim::SchedulingPolicy::wave_quantized);
    ASSERT_EQ(timeline.blocks.size(), 5u);
    EXPECT_EQ(timeline.num_waves, 3);
    // Wave 0: blocks 0,1 start at 0; wave 1 starts at max(3,1)=3;
    // wave 2 at 3+max(2,5)=8; makespan 8+1=9.
    EXPECT_DOUBLE_EQ(timeline.blocks[0].start_seconds, 0.0);
    EXPECT_DOUBLE_EQ(timeline.blocks[1].start_seconds, 0.0);
    EXPECT_DOUBLE_EQ(timeline.blocks[2].start_seconds, 3.0);
    EXPECT_DOUBLE_EQ(timeline.blocks[3].start_seconds, 3.0);
    EXPECT_DOUBLE_EQ(timeline.blocks[4].start_seconds, 8.0);
    EXPECT_DOUBLE_EQ(timeline.makespan_seconds, 9.0);
}

}  // namespace
}  // namespace bsis
