file(REMOVE_RECURSE
  "libbsis_matrix.a"
)
