#include "gpusim/device.hpp"

namespace bsis::gpusim {

// Hardware numbers from Table I of the paper (peak FP64, memory bandwidth,
// L1+shared capacity, L2, CU count) and vendor documentation (warp width,
// shared-memory limits). The calibration parameters (latencies,
// efficiencies) are fitted so the model lands inside the paper's reported
// performance bands; see EXPERIMENTS.md ("Model calibration").

const DeviceSpec& v100()
{
    static const DeviceSpec spec = [] {
        DeviceSpec d;
        d.name = "V100";
        d.peak_fp64_tflops = 7.8;
        d.mem_bw_gbps = 990;
        d.l1_shared_kib_per_cu = 128;
        // Default per-block dynamic shared-memory limit (without opting in
        // to the full 96 KiB); reproduces the paper's "6 of 9 vectors in
        // shared memory on the V100".
        d.max_shared_kib_per_block = 48;
        d.l2_mib = 6;
        d.num_cu = 80;
        d.warp_size = 32;
        d.scheduling = SchedulingPolicy::greedy_dynamic;
        d.launch_overhead_us = 8.0;
        d.reduction_latency_us = 1.6;
        d.barrier_latency_us = 0.4;
        d.spill_latency_us = 0.8;
        d.l1_bw_ratio = 10.0;
        d.l2_bw_ratio = 6.0;
        d.link_bw_gbps = 50.0;  // NVLink (Summit)
        d.direct_qr_efficiency = 0.015;
        return d;
    }();
    return spec;
}

const DeviceSpec& a100()
{
    static const DeviceSpec spec = [] {
        DeviceSpec d;
        d.name = "A100";
        d.peak_fp64_tflops = 9.7;
        d.mem_bw_gbps = 1555;
        d.l1_shared_kib_per_cu = 192;
        d.max_shared_kib_per_block = 96;  // opt-in carve-out used by GINKGO
        d.l2_mib = 40;
        d.num_cu = 108;
        d.warp_size = 32;
        d.scheduling = SchedulingPolicy::greedy_dynamic;
        d.launch_overhead_us = 8.0;
        d.reduction_latency_us = 2.1;
        d.barrier_latency_us = 0.4;
        d.spill_latency_us = 0.7;
        d.l1_bw_ratio = 10.0;
        d.l2_bw_ratio = 8.0;
        d.link_bw_gbps = 25.0;  // PCIe gen4
        d.direct_qr_efficiency = 0.015;
        return d;
    }();
    return spec;
}

const DeviceSpec& mi100()
{
    static const DeviceSpec spec = [] {
        DeviceSpec d;
        d.name = "MI100";
        d.peak_fp64_tflops = 11.5;
        d.mem_bw_gbps = 1230;
        d.l1_shared_kib_per_cu = 16 + 64;  // 16 KiB L1 + 64 KiB LDS
        d.max_shared_kib_per_block = 64;   // full LDS for one block
        d.l2_mib = 8;
        d.num_cu = 120;
        d.warp_size = 64;
        d.max_threads_per_cu = 2560;
        d.scheduling = SchedulingPolicy::wave_quantized;
        d.launch_overhead_us = 10.0;
        d.reduction_latency_us = 1.0;
        d.barrier_latency_us = 0.3;
        d.spill_latency_us = 0.6;
        d.l1_bw_ratio = 12.0;
        d.l2_bw_ratio = 8.0;
        d.link_bw_gbps = 16.0;  // PCIe gen3/4
        d.direct_qr_efficiency = 0.015;
        return d;
    }();
    return spec;
}

const DeviceSpec& h100()
{
    static const DeviceSpec spec = [] {
        DeviceSpec d;
        d.name = "H100";
        d.peak_fp64_tflops = 34.0;  // vector FP64, SXM5
        d.mem_bw_gbps = 3350;
        d.l1_shared_kib_per_cu = 256;
        d.max_shared_kib_per_block = 227;
        d.l2_mib = 50;
        d.num_cu = 132;
        d.warp_size = 32;
        d.scheduling = SchedulingPolicy::greedy_dynamic;
        d.launch_overhead_us = 6.0;
        d.reduction_latency_us = 1.4;
        d.barrier_latency_us = 0.3;
        d.spill_latency_us = 0.6;
        d.l1_bw_ratio = 10.0;
        d.l2_bw_ratio = 8.0;
        d.link_bw_gbps = 64.0;  // PCIe gen5 / NVLink4 share
        d.direct_qr_efficiency = 0.015;
        return d;
    }();
    return spec;
}

const DeviceSpec& mi250x_gcd()
{
    static const DeviceSpec spec = [] {
        DeviceSpec d;
        d.name = "MI250X-GCD";
        d.peak_fp64_tflops = 23.9;  // vector FP64, one GCD
        d.mem_bw_gbps = 1600;
        d.l1_shared_kib_per_cu = 16 + 64;
        d.max_shared_kib_per_block = 64;
        d.l2_mib = 8;
        d.num_cu = 110;
        d.warp_size = 64;
        d.max_threads_per_cu = 2560;
        d.scheduling = SchedulingPolicy::wave_quantized;
        d.launch_overhead_us = 8.0;
        d.reduction_latency_us = 0.9;
        d.barrier_latency_us = 0.25;
        d.spill_latency_us = 0.5;
        d.l1_bw_ratio = 12.0;
        d.l2_bw_ratio = 8.0;
        d.link_bw_gbps = 36.0;  // Infinity Fabric host link
        d.direct_qr_efficiency = 0.015;
        return d;
    }();
    return spec;
}

const DeviceSpec* projection_gpus(int& count)
{
    static const DeviceSpec gpus[] = {h100(), mi250x_gcd()};
    count = 2;
    return gpus;
}

const DeviceSpec* all_gpus(int& count)
{
    static const DeviceSpec gpus[] = {v100(), a100(), mi100()};
    count = 3;
    return gpus;
}

const CpuSpec& skylake_node()
{
    static const CpuSpec spec = [] {
        CpuSpec c;
        c.name = "Skylake (2x Xeon Gold 6148)";
        c.total_cores = 40;
        // The proxy app distributes the batch over 38 of the 40 cores
        // (Section V of the paper).
        c.cores_used = 38;
        // Table I: 1.0 TFlops FP64 per socket of 20 cores.
        c.peak_fp64_gflops_per_core = 50.0;
        // MKL dgbsv on a 992x992, kl=ku=33 band reaches roughly 13% of
        // per-core peak (calibrated; see EXPERIMENTS.md).
        c.banded_lu_efficiency = 0.13;
        c.mem_bw_gbps = 256.0;
        return c;
    }();
    return spec;
}

}  // namespace bsis::gpusim
