#include "util/timer.hpp"

namespace bsis {

void Timer::reset() { start_ = std::chrono::steady_clock::now(); }

double Timer::seconds() const
{
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
}

void StopWatch::stop()
{
    if (running_) {
        total_ += lap_.seconds();
        ++laps_;
        running_ = false;
    }
}

}  // namespace bsis
