# Empty dependencies file for bench_ablation_reductions.
# This may be replaced when dependencies are built.
