// Batched Conjugate Gradient Squared kernel (Sonneveld 1989).
//
// The transpose-free sibling of BiCGStab: same Krylov machinery, squared
// contraction, often faster but rougher convergence. Part of the "several
// preconditionable iterative solvers" family of Section IV-B; the
// solver-comparison example shows why the paper settled on BiCGStab for
// the collision matrices.
#pragma once

#include <cmath>
#include <vector>

#include "blas/kernels.hpp"
#include "core/workspace.hpp"
#include "obs/telemetry.hpp"
#include "util/types.hpp"

namespace bsis {

/// Scratch vectors: r, r_hat, u, p, q, u_hat, v, t.
inline constexpr int cgs_work_vectors = 8;

/// `history`, when non-null, receives the residual norm at the top of
/// every iteration (same contract as `bicgstab_kernel`).
template <typename MatrixView, typename Prec, typename Stop>
EntryResult cgs_kernel(const MatrixView& a, ConstVecView<real_type> b,
                       VecView<real_type> x, const Prec& prec,
                       const Stop& stop, int max_iters, Workspace& ws,
                       int work_offset = 0,
                       std::vector<real_type>* history = nullptr)
{
    auto r = ws.slot(work_offset + 0);
    auto r_hat = ws.slot(work_offset + 1);
    auto u = ws.slot(work_offset + 2);
    auto p = ws.slot(work_offset + 3);
    auto q = ws.slot(work_offset + 4);
    auto u_hat = ws.slot(work_offset + 5);
    auto v = ws.slot(work_offset + 6);
    auto t = ws.slot(work_offset + 7);

    const real_type b_norm = blas::nrm2(b);

    obs::traced(obs::Phase::spmv, "spmv", [&] { spmv(a, ConstVecView<real_type>(x), r); });
    blas::axpby(real_type{1}, b, real_type{-1}, r);
    blas::copy(ConstVecView<real_type>(r), r_hat);
    real_type r_norm = obs::traced(
        obs::Phase::reduction, "reduction",
        [&] { return blas::nrm2(ConstVecView<real_type>(r)); });
    const real_type r0 = r_norm;
    real_type rho_old = 1;

    if (history != nullptr) {
        history->clear();
        history->push_back(r_norm);
    }
    for (int iter = 0; iter < max_iters; ++iter) {
        if (stop.done(r_norm, b_norm)) {
            return {iter, r_norm, true, FailureClass::converged};
        }
        if (!std::isfinite(r_norm)) {
            return {iter, r_norm, false, FailureClass::non_finite};
        }
        const real_type rho = obs::traced(obs::Phase::reduction, "reduction", [&] {
            return blas::dot(ConstVecView<real_type>(r_hat),
                             ConstVecView<real_type>(r));
        });
        if (rho == real_type{0}) {
            return {iter, r_norm, false, FailureClass::breakdown_rho};
        }
        if (iter == 0) {
            blas::copy(ConstVecView<real_type>(r), u);
            blas::copy(ConstVecView<real_type>(u), p);
        } else {
            const real_type beta = rho / rho_old;
            obs::traced(obs::Phase::update, "update", [&] {
                // u = r + beta q in one sweep (was copy + axpy).
                blas::zaxpby(real_type{1}, ConstVecView<real_type>(r), beta,
                             ConstVecView<real_type>(q), u);
                // p = u + beta q + beta^2 p in one sweep (was two axpbys).
                blas::axpbypcz(real_type{1}, ConstVecView<real_type>(u), beta,
                               ConstVecView<real_type>(q), beta * beta, p);
            });
        }
        obs::traced(obs::Phase::precond, "precond_apply",
                    [&] { prec.apply(ConstVecView<real_type>(p), u_hat); });
        obs::traced(obs::Phase::spmv, "spmv",
                    [&] { spmv(a, ConstVecView<real_type>(u_hat), v); });
        const real_type sigma = obs::traced(obs::Phase::reduction, "reduction", [&] {
            return blas::dot(ConstVecView<real_type>(r_hat),
                             ConstVecView<real_type>(v));
        });
        if (sigma == real_type{0}) {
            // alpha = rho / sigma undefined: rho-side breakdown.
            return {iter, r_norm, false, FailureClass::breakdown_rho};
        }
        const real_type alpha = rho / sigma;
        obs::traced(obs::Phase::update, "update", [&] {
            // q = u - alpha v in one sweep (was copy + axpy).
            blas::zaxpby(real_type{1}, ConstVecView<real_type>(u), -alpha,
                         ConstVecView<real_type>(v), q);
            // u_hat = M^-1 (u + q); x += alpha u_hat; r -= alpha A u_hat
            blas::zaxpby(real_type{1}, ConstVecView<real_type>(u),
                         real_type{1}, ConstVecView<real_type>(q), t);
        });
        obs::traced(obs::Phase::precond, "precond_apply",
                    [&] { prec.apply(ConstVecView<real_type>(t), u_hat); });
        blas::axpy(alpha, ConstVecView<real_type>(u_hat), x);
        obs::traced(obs::Phase::spmv, "spmv",
                    [&] { spmv(a, ConstVecView<real_type>(u_hat), t); });
        // r -= alpha * t fused with ||r||.
        r_norm = obs::traced(obs::Phase::update, "update", [&] {
            return blas::axpy_nrm2(-alpha, ConstVecView<real_type>(t), r);
        });
        rho_old = rho;
        if (history != nullptr) {
            history->push_back(r_norm);
        }
    }
    {
        const bool done = stop.done(r_norm, b_norm);
        return {max_iters, r_norm, done,
                classify_exhausted(r_norm, r0, done)};
    }
}

}  // namespace bsis
