// Dense factorizations: LU with partial pivoting (getrf/getrs), Householder
// QR solve, and a 1-norm condition estimator (Hager/Higham). Used for
// validating the banded solvers, for block-Jacobi preconditioner setup, and
// for matrix characterization (Section II of the paper motivates iterative
// solvers by the low condition numbers of the collision matrices).
#pragma once

#include <vector>

#include "matrix/batch_dense.hpp"
#include "util/types.hpp"

namespace bsis::lapack {

/// In-place dense LU with partial pivoting. Throws NumericalBreakdown on a
/// zero pivot.
void getrf(DenseView<real_type> a, std::vector<index_type>& ipiv);

/// Solves with a getrf factorization; b is overwritten by the solution.
void getrs(ConstDenseView<real_type> a, const std::vector<index_type>& ipiv,
           VecView<real_type> b);

/// Solves transpose(A) x = b with a getrf factorization of A.
void getrs_transpose(ConstDenseView<real_type> a,
                     const std::vector<index_type>& ipiv,
                     VecView<real_type> b);

/// Convenience driver: factorize + solve; destroys `a`.
void gesv(DenseView<real_type> a, VecView<real_type> b);

/// Householder QR solve of a square system; destroys `a`, overwrites `b`.
void geqrs(DenseView<real_type> a, VecView<real_type> b);

/// Batched dense LU driver (the getrf/getrs-batched of the Section III
/// batched-LAPACK literature): factorizes and solves every entry, one
/// system per OpenMP task. `x` enters holding the right-hand sides and
/// exits holding the solutions; the matrices are destroyed.
void batch_gesv(BatchDense<real_type>& a, BatchVector<real_type>& x);

/// 1-norm of a dense matrix.
real_type norm_1(ConstDenseView<real_type> a);

/// Estimates the 1-norm condition number kappa_1(A) = ||A||_1 ||A^-1||_1
/// using Hager's method on an LU factorization (like LAPACK's gecon).
real_type estimate_condition_1(ConstDenseView<real_type> a);

}  // namespace bsis::lapack
