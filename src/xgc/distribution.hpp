// Distribution functions and velocity moments.
//
// Distributions live on the VelocityGrid in thermal-velocity units of the
// species (v normalized by sqrt(T_ref / m_s)), so the same grid serves
// both species. Moments use the cylindrical (gyro-symmetric) volume
// element and feed the nonlinear coefficients of the collision operator
// and the conservation diagnostics.
#pragma once

#include <vector>

#include "blas/batch_vector.hpp"
#include "util/types.hpp"
#include "xgc/grid.hpp"

namespace bsis::xgc {

/// Fluid state of one species at one mesh node, in normalized units.
struct PlasmaState {
    real_type density = 1.0;
    real_type u_par = 0.0;        ///< parallel flow velocity
    real_type temperature = 1.0;  ///< in units of the reference temperature
};

/// Fills `f` with a drifting Maxwellian of the given state (normalized
/// velocities: thermal speed of the reference temperature is 1).
void maxwellian(const VelocityGrid& grid, const PlasmaState& state,
                VecView<real_type> f);

/// Velocity moments: density n = Int f dV, parallel flow
/// u = Int v_par f dV / n, temperature T = (m/3)(Int w^2 f dV)/n with
/// w^2 = (v_par - u)^2 + v_perp^2 (3D energy via gyro symmetry; mass = 1 in
/// reference units).
PlasmaState moments(const VelocityGrid& grid, ConstVecView<real_type> f);

/// Conserved quantities of one distribution (density, parallel momentum,
/// total kinetic energy), used by the conservation diagnostics of the
/// Picard driver.
struct ConservedQuantities {
    real_type density = 0.0;
    real_type momentum = 0.0;
    real_type energy = 0.0;
};

ConservedQuantities conserved(const VelocityGrid& grid,
                              ConstVecView<real_type> f);

/// Relative conservation error between two distributions (max over the
/// three invariants, each normalized by the initial value or 1).
real_type conservation_error(const ConservedQuantities& before,
                             const ConservedQuantities& after);

/// Parallel and perpendicular temperatures of a distribution (relative to
/// its own flow): collisions drive their ratio toward 1, which is the
/// classic validation of an anisotropic collision operator.
struct TemperatureAnisotropy {
    real_type t_par = 0.0;
    real_type t_perp = 0.0;

    real_type ratio() const { return t_perp == 0.0 ? 0.0 : t_par / t_perp; }
};

TemperatureAnisotropy temperature_anisotropy(const VelocityGrid& grid,
                                             ConstVecView<real_type> f);

/// XGC-style conservation correction: perturbs f multiplicatively with the
/// collision invariants, f' = f * (1 + a + b*v_par + c*E), choosing
/// (a, b, c) so that density, parallel momentum, and energy of f' match
/// `target` exactly (a 3x3 linear solve on moment integrals). This is the
/// moment-fixing step production XGC applies inside the collision kernel;
/// it removes the O(dv^2) drift of the discretized operator.
void moment_fix(const VelocityGrid& grid, VecView<real_type> f,
                const ConservedQuantities& target);

}  // namespace bsis::xgc
