#include "obs/metrics.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace bsis::obs {

namespace {

/// Quantile of an unsorted sample set: type-7 linear interpolation on a
/// sorted copy (the R/NumPy default). Degenerate inputs behave sensibly:
/// no samples -> 0, one sample -> that sample for every q, all-equal
/// samples -> that value exactly (nearest-rank rounding used to bias
/// small-n quantiles toward the upper sample).
double quantile(std::vector<double> samples, double q)
{
    if (samples.empty()) {
        return 0.0;
    }
    std::sort(samples.begin(), samples.end());
    if (samples.size() == 1) {
        return samples[0];
    }
    const double pos = q * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples[lo] + frac * (samples[hi] - samples[lo]);
}

void append_json_number(std::ostringstream& os, double v)
{
    // JSON has no inf/nan literals; clamp to null-safe zero.
    if (v != v || v > 1e308 || v < -1e308) {
        os << 0;
    } else {
        os << v;
    }
}

}  // namespace

std::int64_t MetricsSnapshot::counter(const std::string& name) const
{
    for (const auto& c : counters) {
        if (c.name == name) {
            return c.value;
        }
    }
    return 0;
}

double MetricsSnapshot::gauge(const std::string& name) const
{
    for (const auto& g : gauges) {
        if (g.name == name) {
            return g.value;
        }
    }
    return 0.0;
}

bool MetricsSnapshot::gauge_set(const std::string& name) const
{
    for (const auto& g : gauges) {
        if (g.name == name) {
            return g.set;
        }
    }
    return false;
}

HistogramSummary MetricsSnapshot::histogram(const std::string& name) const
{
    for (const auto& h : histograms) {
        if (h.name == name) {
            return h.summary;
        }
    }
    return {};
}

std::string MetricsSnapshot::json() const
{
    std::ostringstream os;
    os.precision(12);
    os << "{\n  \"counters\": {";
    for (std::size_t i = 0; i < counters.size(); ++i) {
        os << (i == 0 ? "\n" : ",\n") << "    ";
        json_quote(os, counters[i].name);
        os << ": " << counters[i].value;
    }
    os << (counters.empty() ? "}" : "\n  }") << ",\n  \"gauges\": {";
    std::size_t emitted = 0;
    for (const auto& g : gauges) {
        if (!g.set) {
            continue;
        }
        os << (emitted == 0 ? "\n" : ",\n") << "    ";
        json_quote(os, g.name);
        os << ": ";
        append_json_number(os, g.value);
        ++emitted;
    }
    os << (emitted == 0 ? "}" : "\n  }") << ",\n  \"histograms\": {";
    for (std::size_t i = 0; i < histograms.size(); ++i) {
        const auto& h = histograms[i];
        os << (i == 0 ? "\n" : ",\n") << "    ";
        json_quote(os, h.name);
        os << ": {\"count\": " << h.summary.count << ", \"sum\": ";
        append_json_number(os, h.summary.sum);
        os << ", \"mean\": ";
        append_json_number(os, h.summary.mean());
        os << ", \"p50\": ";
        append_json_number(os, h.summary.p50);
        os << ", \"p95\": ";
        append_json_number(os, h.summary.p95);
        os << ", \"max\": ";
        append_json_number(os, h.summary.max);
        os << "}";
    }
    os << (histograms.empty() ? "}" : "\n  }") << "\n}\n";
    return os.str();
}

MetricsRegistry::Id MetricsRegistry::register_metric(const std::string& name,
                                                     Kind kind)
{
    std::lock_guard<std::mutex> lock(names_mutex_);
    const auto check_unique = [&](const std::vector<std::string>& other) {
        for (const auto& n : other) {
            BSIS_ENSURE_ARG(n != name,
                            "metric '" + name +
                                "' already registered with another kind");
        }
    };
    auto& names = kind == Kind::counter
                      ? counter_names_
                      : (kind == Kind::gauge ? gauge_names_
                                             : histogram_names_);
    for (std::size_t slot = 0; slot < names.size(); ++slot) {
        if (names[slot] == name) {
            return encode(kind, static_cast<int>(slot));
        }
    }
    if (kind != Kind::counter) {
        check_unique(counter_names_);
    }
    if (kind != Kind::gauge) {
        check_unique(gauge_names_);
    }
    if (kind != Kind::histogram) {
        check_unique(histogram_names_);
    }
    names.push_back(name);
    return encode(kind, static_cast<int>(names.size()) - 1);
}

MetricsRegistry::Id MetricsRegistry::counter(const std::string& name)
{
    return register_metric(name, Kind::counter);
}

MetricsRegistry::Id MetricsRegistry::gauge(const std::string& name)
{
    return register_metric(name, Kind::gauge);
}

MetricsRegistry::Id MetricsRegistry::histogram(const std::string& name)
{
    return register_metric(name, Kind::histogram);
}

void MetricsRegistry::add(Id id, std::int64_t delta)
{
    BSIS_ASSERT(kind_of(id) == Kind::counter);
    const int slot = slot_of(id);
    auto& shard = shards_.local();
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (static_cast<std::size_t>(slot) >= shard.counters.size()) {
        shard.counters.resize(static_cast<std::size_t>(slot) + 1, 0);
    }
    shard.counters[static_cast<std::size_t>(slot)] += delta;
}

void MetricsRegistry::set(Id id, double value)
{
    BSIS_ASSERT(kind_of(id) == Kind::gauge);
    const int slot = slot_of(id);
    const auto seq = gauge_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    auto& shard = shards_.local();
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (static_cast<std::size_t>(slot) >= shard.gauges.size()) {
        shard.gauges.resize(static_cast<std::size_t>(slot) + 1);
    }
    auto& cell = shard.gauges[static_cast<std::size_t>(slot)];
    cell.seq = seq;
    cell.value = value;
}

void MetricsRegistry::observe(Id id, double sample)
{
    BSIS_ASSERT(kind_of(id) == Kind::histogram);
    const int slot = slot_of(id);
    auto& shard = shards_.local();
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (static_cast<std::size_t>(slot) >= shard.histograms.size()) {
        shard.histograms.resize(static_cast<std::size_t>(slot) + 1);
    }
    auto& cell = shard.histograms[static_cast<std::size_t>(slot)];
    cell.max = cell.any ? std::max(cell.max, sample) : sample;
    cell.any = true;
    cell.sum += sample;
    // Stride decimation keeps the reservoir bounded: when full, drop every
    // other retained sample and double the admission stride. count stays
    // exact; quantiles come from the retained subsample.
    if (cell.count % cell.stride == 0) {
        if (cell.samples.size() ==
            static_cast<std::size_t>(histogram_shard_capacity)) {
            std::vector<double> kept;
            kept.reserve(cell.samples.size() / 2 + 1);
            for (std::size_t i = 0; i < cell.samples.size(); i += 2) {
                kept.push_back(cell.samples[i]);
            }
            cell.samples = std::move(kept);
            cell.stride *= 2;
            if (cell.count % cell.stride == 0) {
                cell.samples.push_back(sample);
            }
        } else {
            cell.samples.push_back(sample);
        }
    }
    ++cell.count;
}

void MetricsRegistry::add_named(const std::string& name, std::int64_t delta)
{
    add(counter(name), delta);
}

void MetricsRegistry::set_named(const std::string& name, double value)
{
    set(gauge(name), value);
}

void MetricsRegistry::observe_named(const std::string& name, double sample)
{
    observe(histogram(name), sample);
}

MetricsSnapshot MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    std::vector<std::uint64_t> gauge_seqs;
    {
        std::lock_guard<std::mutex> lock(names_mutex_);
        snap.counters.resize(counter_names_.size());
        for (std::size_t i = 0; i < counter_names_.size(); ++i) {
            snap.counters[i].name = counter_names_[i];
        }
        snap.gauges.resize(gauge_names_.size());
        for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
            snap.gauges[i].name = gauge_names_[i];
        }
        snap.histograms.resize(histogram_names_.size());
        for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
            snap.histograms[i].name = histogram_names_[i];
        }
    }
    gauge_seqs.assign(snap.gauges.size(), 0);
    std::vector<std::vector<double>> hist_samples(snap.histograms.size());
    shards_.for_each([&](const Shard& shard) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        for (std::size_t i = 0;
             i < shard.counters.size() && i < snap.counters.size(); ++i) {
            snap.counters[i].value += shard.counters[i];
        }
        for (std::size_t i = 0;
             i < shard.gauges.size() && i < snap.gauges.size(); ++i) {
            const auto& cell = shard.gauges[i];
            if (cell.seq > gauge_seqs[i]) {
                gauge_seqs[i] = cell.seq;
                snap.gauges[i].value = cell.value;
                snap.gauges[i].set = true;
            }
        }
        for (std::size_t i = 0;
             i < shard.histograms.size() && i < snap.histograms.size();
             ++i) {
            const auto& cell = shard.histograms[i];
            auto& summary = snap.histograms[i].summary;
            summary.count += cell.count;
            summary.sum += cell.sum;
            if (cell.any) {
                summary.max = summary.count == cell.count
                                  ? cell.max
                                  : std::max(summary.max, cell.max);
            }
            hist_samples[i].insert(hist_samples[i].end(),
                                   cell.samples.begin(),
                                   cell.samples.end());
        }
    });
    for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
        auto& summary = snap.histograms[i].summary;
        summary.p50 = quantile(hist_samples[i], 0.50);
        summary.p95 = quantile(hist_samples[i], 0.95);
    }
    return snap;
}

bool MetricsRegistry::write_json(const std::string& path) const
{
    std::ofstream out(path);
    if (!out) {
        return false;
    }
    out << snapshot_json();
    return static_cast<bool>(out);
}

void MetricsRegistry::reset_values()
{
    shards_.for_each([](Shard& shard) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.counters.assign(shard.counters.size(), 0);
        shard.gauges.assign(shard.gauges.size(), GaugeCell{});
        shard.histograms.assign(shard.histograms.size(), HistCell{});
    });
}

}  // namespace bsis::obs
