# Empty dependencies file for bench_tolerance_study.
# This may be replaced when dependencies are built.
