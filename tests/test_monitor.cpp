// Live-monitoring tier (`monitor` ctest label): the time-series sampler,
// the alert-rule engine and its hysteresis, the Prometheus exposition
// round-trip, the structured event log, the shared JSON escaping, and the
// failure-storm end-to-end (seeded failures -> default alert firing ->
// promfile and obs.alerts.* counters agree).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "core/solver.hpp"
#include "matrix/stencil.hpp"
#include "obs/events.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace bsis {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& stem)
{
    return (fs::temp_directory_path() /
            ("bsis_monitor_test_" + stem + "_" +
             std::to_string(::getpid())))
        .string();
}

std::string read_file(const std::string& path)
{
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/// When scripts/check.sh sets BSIS_MONITOR_E2E_PROM, the failure-storm
/// test copies the firing-tick promfile there so the script can run
/// `obs_top --once` against it and assert the nonzero exit.
std::string keep_prom_path()
{
    const char* env = std::getenv("BSIS_MONITOR_E2E_PROM");
    return env == nullptr ? std::string{} : std::string(env);
}

std::vector<std::string> read_lines(const std::string& path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        lines.push_back(line);
    }
    return lines;
}

// ---------------------------------------------------------------------
// Time-series ring
// ---------------------------------------------------------------------

TEST(TimeSeriesRing, FillsThenWrapsOverwritingOldest)
{
    obs::TimeSeriesRing ring(4);
    EXPECT_EQ(ring.capacity(), 4);
    EXPECT_EQ(ring.size(), 0);
    for (int i = 0; i < 6; ++i) {
        ring.push(static_cast<double>(i), 10.0 * i);
    }
    EXPECT_EQ(ring.size(), 4);
    EXPECT_EQ(ring.pushed(), 6);
    // Oldest retained is push #2, newest is push #5.
    EXPECT_DOUBLE_EQ(ring.at(0).t, 2.0);
    EXPECT_DOUBLE_EQ(ring.at(0).value, 20.0);
    EXPECT_DOUBLE_EQ(ring.at(3).t, 5.0);
    EXPECT_DOUBLE_EQ(ring.back().value, 50.0);
    const auto pts = ring.points();
    ASSERT_EQ(pts.size(), 4u);
    for (std::size_t i = 1; i < pts.size(); ++i) {
        EXPECT_LT(pts[i - 1].t, pts[i].t);
    }
}

// ---------------------------------------------------------------------
// Alert-rule grammar
// ---------------------------------------------------------------------

TEST(AlertRules, ParsesRateRuleWithWildcardAndDuration)
{
    obs::AlertRule rule;
    ASSERT_TRUE(obs::parse_alert_rule(
        "solve_failures: rate(solve.fail.*) > 0 for 0.5s", rule));
    EXPECT_EQ(rule.name, "solve_failures");
    EXPECT_EQ(rule.func, obs::AlertFunc::rate);
    EXPECT_EQ(rule.metric, "solve.fail.*");
    EXPECT_EQ(rule.op, obs::AlertOp::gt);
    EXPECT_DOUBLE_EQ(rule.threshold, 0.0);
    EXPECT_DOUBLE_EQ(rule.for_seconds, 0.5);
}

TEST(AlertRules, ParsesValueRuleWithoutDuration)
{
    obs::AlertRule rule;
    ASSERT_TRUE(obs::parse_alert_rule(
        "slow: value(solve.last_wall_seconds) >= 2.5", rule));
    EXPECT_EQ(rule.func, obs::AlertFunc::value);
    EXPECT_EQ(rule.op, obs::AlertOp::ge);
    EXPECT_DOUBLE_EQ(rule.threshold, 2.5);
    EXPECT_DOUBLE_EQ(rule.for_seconds, 0.0);
}

TEST(AlertRules, ParsesAbsentRule)
{
    obs::AlertRule rule;
    ASSERT_TRUE(obs::parse_alert_rule(
        "heartbeat: absent(solve.batches) for 10s", rule));
    EXPECT_EQ(rule.func, obs::AlertFunc::absent);
    EXPECT_DOUBLE_EQ(rule.for_seconds, 10.0);
}

TEST(AlertRules, RejectsMalformedLines)
{
    obs::AlertRule rule;
    std::string error;
    EXPECT_FALSE(obs::parse_alert_rule("no colon here", rule, &error));
    EXPECT_FALSE(obs::parse_alert_rule("a: max(x) > 1", rule, &error));
    EXPECT_FALSE(obs::parse_alert_rule("a: value(x) != 1", rule, &error));
    EXPECT_FALSE(obs::parse_alert_rule("a: value(x) >", rule, &error));
    EXPECT_FALSE(
        obs::parse_alert_rule("a: value(x) > 1 for axes", rule, &error));
    EXPECT_FALSE(obs::parse_alert_rule("a: value(x) > 1 for 2s extra",
                                       rule, &error));
    EXPECT_FALSE(obs::parse_alert_rule("a: absent(x)", rule, &error));
    EXPECT_FALSE(obs::parse_alert_rule("a: value() > 1", rule, &error));
    EXPECT_FALSE(error.empty());
}

TEST(AlertRules, LoadsRuleFileSkippingCommentsAndBlanks)
{
    const std::string path = temp_path("rules");
    {
        std::ofstream out(path);
        out << "# storm detection\n\n"
            << "storms: rate(solve.fail.*) > 1 for 1s  # inline comment\n"
            << "drops: value(obs.trace.dropped) > 0\n";
    }
    std::vector<obs::AlertRule> rules;
    std::string error;
    ASSERT_TRUE(obs::load_alert_rules(path, rules, &error)) << error;
    ASSERT_EQ(rules.size(), 2u);
    EXPECT_EQ(rules[0].name, "storms");
    EXPECT_EQ(rules[1].name, "drops");
    // A malformed line fails the whole file with its line number.
    {
        std::ofstream out(path);
        out << "ok: value(x) > 1\nbroken line\n";
    }
    EXPECT_FALSE(obs::load_alert_rules(path, rules, &error));
    EXPECT_NE(error.find(":2:"), std::string::npos) << error;
    fs::remove(path);
}

TEST(AlertRules, DefaultRulesCoverFailureDriftAndDrops)
{
    const auto rules = obs::default_alert_rules();
    std::vector<std::string> metrics;
    for (const auto& r : rules) {
        metrics.push_back(r.metric);
    }
    EXPECT_NE(std::find(metrics.begin(), metrics.end(), "solve.fail.*"),
              metrics.end());
    EXPECT_NE(std::find(metrics.begin(), metrics.end(), "gpusim.fail.*"),
              metrics.end());
    EXPECT_NE(
        std::find(metrics.begin(), metrics.end(), "obs.drift.alarms"),
        metrics.end());
    EXPECT_NE(
        std::find(metrics.begin(), metrics.end(), "obs.trace.dropped"),
        metrics.end());
}

// ---------------------------------------------------------------------
// Sampler math
// ---------------------------------------------------------------------

obs::MonitorConfig quiet_config()
{
    obs::MonitorConfig config;
    config.use_default_rules = false;
    return config;
}

TEST(MonitorSampling, CounterDeltasBecomePerSecondRates)
{
    obs::MetricsRegistry registry;
    const auto id = registry.counter("work.items");
    obs::Monitor monitor(registry, quiet_config());

    registry.add(id, 100);
    monitor.sample_at(10.0);  // priming tick: baseline only, no rate
    EXPECT_TRUE(monitor.counter_rate("work.items").empty());

    registry.add(id, 50);
    monitor.sample_at(12.0);  // 50 in 2 s -> 25/s
    auto rates = monitor.counter_rate("work.items");
    ASSERT_EQ(rates.size(), 1u);
    EXPECT_DOUBLE_EQ(rates[0].t, 12.0);
    EXPECT_DOUBLE_EQ(rates[0].value, 25.0);

    monitor.sample_at(13.0);  // no increments -> rate 0
    rates = monitor.counter_rate("work.items");
    ASSERT_EQ(rates.size(), 2u);
    EXPECT_DOUBLE_EQ(rates[1].value, 0.0);

    // reset_values() shows up as a negative delta: the series re-primes
    // instead of recording a negative rate.
    registry.reset_values();
    monitor.sample_at(14.0);
    rates = monitor.counter_rate("work.items");
    ASSERT_EQ(rates.size(), 2u);
    registry.add(id, 7);
    monitor.sample_at(15.0);
    rates = monitor.counter_rate("work.items");
    ASSERT_EQ(rates.size(), 3u);
    EXPECT_DOUBLE_EQ(rates[2].value, 7.0);
}

TEST(MonitorSampling, GaugeAndHistogramTracks)
{
    obs::MetricsRegistry registry;
    const auto g = registry.gauge("queue.depth");
    const auto h = registry.histogram("iter.count");
    obs::Monitor monitor(registry, quiet_config());

    monitor.sample_at(1.0);  // neither metric recorded yet
    EXPECT_TRUE(monitor.gauge_values("queue.depth").empty());
    EXPECT_TRUE(monitor.histogram_quantile("iter.count", 0.95).empty());

    registry.set(g, 42.0);
    for (int i = 1; i <= 100; ++i) {
        registry.observe(h, static_cast<double>(i));
    }
    monitor.sample_at(2.0);
    const auto gauge = monitor.gauge_values("queue.depth");
    ASSERT_EQ(gauge.size(), 1u);
    EXPECT_DOUBLE_EQ(gauge[0].value, 42.0);
    const auto p50 = monitor.histogram_quantile("iter.count", 0.5);
    const auto p95 = monitor.histogram_quantile("iter.count", 0.95);
    ASSERT_EQ(p50.size(), 1u);
    ASSERT_EQ(p95.size(), 1u);
    EXPECT_NEAR(p50[0].value, 50.0, 2.0);
    EXPECT_NEAR(p95[0].value, 95.0, 2.0);
}

TEST(MonitorSampling, RingCapacityBoundsRetainedHistory)
{
    obs::MetricsRegistry registry;
    const auto id = registry.counter("c");
    auto config = quiet_config();
    config.ring_capacity = 4;
    obs::Monitor monitor(registry, config);
    for (int i = 0; i < 10; ++i) {
        registry.add(id, 1);
        monitor.sample_at(static_cast<double>(i));
    }
    const auto rates = monitor.counter_rate("c");
    ASSERT_EQ(rates.size(), 4u);  // 9 rate points pushed, 4 retained
    EXPECT_DOUBLE_EQ(rates.back().t, 9.0);
}

// ---------------------------------------------------------------------
// Alert engine
// ---------------------------------------------------------------------

obs::MonitorConfig one_rule_config(const std::string& line)
{
    obs::MonitorConfig config;
    config.use_default_rules = false;
    obs::AlertRule rule;
    EXPECT_TRUE(obs::parse_alert_rule(line, rule));
    config.rules.push_back(rule);
    return config;
}

TEST(MonitorAlerts, SingleBadTickDoesNotFlap)
{
    obs::MetricsRegistry registry;
    const auto id = registry.counter("solve.fail.max_iters");
    obs::Monitor monitor(
        registry,
        one_rule_config("storm: rate(solve.fail.max_iters) > 0 for 1s"));

    monitor.sample_at(0.0);
    registry.add(id, 5);
    monitor.sample_at(0.5);  // one bad tick -> pending, not firing
    auto alerts = monitor.alerts();
    ASSERT_EQ(alerts.size(), 1u);
    EXPECT_EQ(alerts[0].phase, obs::AlertPhase::pending);
    EXPECT_EQ(monitor.firing(), 0);

    monitor.sample_at(1.0);  // rate back to 0 before the for-duration
    alerts = monitor.alerts();
    EXPECT_EQ(alerts[0].phase, obs::AlertPhase::ok);
    EXPECT_EQ(alerts[0].fired, 0);
    EXPECT_EQ(registry.snapshot().counter("obs.alerts.fired"), 0);
}

TEST(MonitorAlerts, FiresAfterForDurationAndResolvesWithHysteresis)
{
    obs::MetricsRegistry registry;
    const auto id = registry.counter("solve.fail.max_iters");
    obs::Monitor monitor(
        registry,
        one_rule_config("storm: rate(solve.fail.max_iters) > 0 for 1s"));

    monitor.sample_at(0.0);
    for (int tick = 1; tick <= 4; ++tick) {  // sustained failures
        registry.add(id, 3);
        monitor.sample_at(0.5 * tick);
    }
    auto alerts = monitor.alerts();
    ASSERT_EQ(alerts.size(), 1u);
    EXPECT_EQ(alerts[0].phase, obs::AlertPhase::firing);
    EXPECT_EQ(alerts[0].fired, 1);
    EXPECT_EQ(monitor.firing(), 1);
    {
        const auto snap = registry.snapshot();
        EXPECT_EQ(snap.counter("obs.alerts.fired"), 1);
        EXPECT_DOUBLE_EQ(snap.gauge("obs.alerts.firing"), 1.0);
    }

    // One clean tick must NOT resolve (same 1 s hysteresis on the clear
    // edge)...
    monitor.sample_at(2.5);
    alerts = monitor.alerts();
    EXPECT_EQ(alerts[0].phase, obs::AlertPhase::firing);
    // ...and a failure inside the clear window resets it.
    registry.add(id, 1);
    monitor.sample_at(3.0);
    monitor.sample_at(3.5);
    alerts = monitor.alerts();
    EXPECT_EQ(alerts[0].phase, obs::AlertPhase::firing);

    // Sustained quiet resolves.
    monitor.sample_at(4.0);
    monitor.sample_at(4.6);
    alerts = monitor.alerts();
    EXPECT_EQ(alerts[0].phase, obs::AlertPhase::ok);
    EXPECT_EQ(alerts[0].resolved, 1);
    {
        const auto snap = registry.snapshot();
        EXPECT_EQ(snap.counter("obs.alerts.resolved"), 1);
        EXPECT_DOUBLE_EQ(snap.gauge("obs.alerts.firing"), 0.0);
    }
}

TEST(MonitorAlerts, ZeroForDurationFiresImmediately)
{
    obs::MetricsRegistry registry;
    const auto id = registry.gauge("obs.trace.dropped");
    obs::Monitor monitor(
        registry,
        one_rule_config("drops: value(obs.trace.dropped) > 0"));
    registry.set(id, 12.0);
    monitor.sample_at(1.0);
    const auto alerts = monitor.alerts();
    ASSERT_EQ(alerts.size(), 1u);
    EXPECT_EQ(alerts[0].phase, obs::AlertPhase::firing);
    EXPECT_DOUBLE_EQ(alerts[0].last_value, 12.0);
}

TEST(MonitorAlerts, AbsenceRuleFiresUntilMetricAppears)
{
    obs::MetricsRegistry registry;
    obs::Monitor monitor(
        registry,
        one_rule_config("heartbeat: absent(solve.batches) for 1s"));
    monitor.sample_at(0.0);
    monitor.sample_at(0.6);
    monitor.sample_at(1.2);
    EXPECT_EQ(monitor.firing(), 1);
    registry.counter("solve.batches");  // registration makes it present
    monitor.sample_at(1.8);
    monitor.sample_at(3.0);
    EXPECT_EQ(monitor.firing(), 0);
}

TEST(MonitorAlerts, WildcardSumsAcrossFailureClasses)
{
    obs::MetricsRegistry registry;
    const auto a = registry.counter("solve.fail.max_iters");
    const auto b = registry.counter("solve.fail.stagnated");
    obs::Monitor monitor(
        registry, one_rule_config("storm: value(solve.fail.*) > 4"));
    registry.add(a, 3);
    registry.add(b, 3);
    monitor.sample_at(1.0);
    const auto alerts = monitor.alerts();
    ASSERT_EQ(alerts.size(), 1u);
    EXPECT_DOUBLE_EQ(alerts[0].last_value, 6.0);
    EXPECT_EQ(alerts[0].phase, obs::AlertPhase::firing);
}

// ---------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------

TEST(Prometheus, NameSanitization)
{
    EXPECT_EQ(obs::prometheus_name("solve.fail.max_iters"),
              "bsis_solve_fail_max_iters");
    EXPECT_EQ(obs::prometheus_name("weird-name with spaces"),
              "bsis_weird_name_with_spaces");
}

TEST(Prometheus, RenderParseRoundTrip)
{
    obs::MetricsRegistry registry;
    const auto c = registry.counter("solve.batches");
    const auto g = registry.gauge("solve.last_wall_seconds");
    const auto h = registry.histogram("solve.system_iterations");
    obs::Monitor monitor(registry, quiet_config());

    registry.add(c, 10);
    monitor.sample_at(1.0);
    registry.add(c, 20);
    registry.set(g, 0.125);
    for (int i = 1; i <= 20; ++i) {
        registry.observe(h, static_cast<double>(i));
    }
    monitor.sample_at(3.0);

    const std::string text = monitor.prometheus_text();
    obs::PromDocument doc;
    ASSERT_TRUE(obs::parse_prometheus_text(text, doc));

    EXPECT_DOUBLE_EQ(doc.value("bsis_solve_batches"), 30.0);
    EXPECT_DOUBLE_EQ(doc.value("bsis_solve_batches_per_sec"), 10.0);
    EXPECT_DOUBLE_EQ(doc.value("bsis_solve_last_wall_seconds"), 0.125);
    const auto* p95 = doc.find("bsis_solve_system_iterations", "quantile",
                               "0.95");
    ASSERT_NE(p95, nullptr);
    EXPECT_NEAR(p95->value, 19.0, 1.5);
    EXPECT_DOUBLE_EQ(doc.value("bsis_solve_system_iterations_count"),
                     20.0);
    // HELP carries the original dotted registry name; TYPE is exposed.
    EXPECT_EQ(doc.help["bsis_solve_batches"], "solve.batches");
    EXPECT_EQ(doc.type["bsis_solve_batches"], "counter");
    EXPECT_EQ(doc.type["bsis_solve_system_iterations"], "summary");
    EXPECT_TRUE(doc.has("bsis_monitor_ticks"));
}

TEST(Prometheus, PromfileIsWrittenAtomicallyEachTick)
{
    obs::MetricsRegistry registry;
    registry.counter("solve.batches");
    auto config = quiet_config();
    config.prom_path = temp_path("promfile");
    obs::Monitor monitor(registry, config);
    monitor.sample_at(1.0);
    obs::PromDocument doc;
    ASSERT_TRUE(obs::load_prometheus_file(config.prom_path, doc));
    EXPECT_TRUE(doc.has("bsis_monitor_ticks"));
    EXPECT_FALSE(fs::exists(config.prom_path + ".tmp"));
    EXPECT_EQ(read_file(config.prom_path), monitor.prometheus_text());
    fs::remove(config.prom_path);
}

#ifndef _WIN32
TEST(Prometheus, HttpEndpointServesExposition)
{
    obs::MetricsRegistry registry;
    registry.counter("solve.batches");
    auto config = quiet_config();
    config.http = true;
    config.http_port = 0;  // ephemeral
    config.tick_seconds = 0.01;
    obs::Monitor monitor(registry, config);
    monitor.start();
    ASSERT_TRUE(monitor.running());
    const int port = monitor.http_port();
    ASSERT_GT(port, 0);
    // Wait for the first tick so the cached exposition is non-empty.
    for (int i = 0; i < 200 && monitor.ticks() == 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_GT(monitor.ticks(), 0);

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
        0);
    const char request[] = "GET /metrics HTTP/1.1\r\n\r\n";
    ASSERT_GT(::write(fd, request, sizeof(request) - 1), 0);
    std::string response;
    char buf[4096];
    for (;;) {
        const auto n = ::read(fd, buf, sizeof(buf));
        if (n <= 0) {
            break;
        }
        response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    monitor.stop();
    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
    const auto split = response.find("\r\n\r\n");
    ASSERT_NE(split, std::string::npos);
    obs::PromDocument doc;
    ASSERT_TRUE(
        obs::parse_prometheus_text(response.substr(split + 4), doc));
    EXPECT_TRUE(doc.has("bsis_monitor_ticks"));
    EXPECT_EQ(monitor.http_port(), 0);  // endpoint closed after stop()
}
#endif

// ---------------------------------------------------------------------
// Event log
// ---------------------------------------------------------------------

TEST(EventLog, EmitsOneJsonObjectPerLineWithEscaping)
{
    const std::string path = temp_path("events");
    obs::EventLog log;
    ASSERT_TRUE(log.open(path));
    log.emit("solve.start", {obs::field("systems", 8),
                             obs::field("solver", "bicgstab"),
                             obs::field("pipelined", false),
                             obs::field("wall", 0.25)});
    log.emit("na\"sty", {obs::field("k", "v\\w\nx")});
    EXPECT_EQ(log.emitted(), 2);
    log.close();

    const auto lines = read_lines(path);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[0].find("\"event\": \"solve.start\""),
              std::string::npos);
    EXPECT_NE(lines[0].find("\"systems\": 8"), std::string::npos);
    EXPECT_NE(lines[0].find("\"solver\": \"bicgstab\""),
              std::string::npos);
    EXPECT_NE(lines[0].find("\"pipelined\": false"), std::string::npos);
    EXPECT_NE(lines[0].find("\"ts\": "), std::string::npos);
    // The quote in the kind and the backslash/newline in the value must be
    // escaped -- every line stays one self-contained JSON object.
    EXPECT_NE(lines[1].find("na\\\"sty"), std::string::npos);
    EXPECT_NE(lines[1].find("v\\\\w\\nx"), std::string::npos);
    fs::remove(path);
}

TEST(EventLog, RotatesWhenByteCapIsExceeded)
{
    const std::string path = temp_path("rotating_events");
    obs::EventLog log;
    ASSERT_TRUE(log.open(path, /*max_bytes=*/256, /*max_rotations=*/2));
    for (int i = 0; i < 50; ++i) {
        log.emit("tick", {obs::field("i", i)});
    }
    log.close();
    EXPECT_EQ(log.emitted(), 50);
    EXPECT_GT(log.rotations(), 0);
    EXPECT_TRUE(fs::exists(path));
    EXPECT_TRUE(fs::exists(path + ".1"));
    EXPECT_FALSE(fs::exists(path + ".3"));  // beyond max_rotations
    EXPECT_LE(fs::file_size(path), 256u + 128u);
    fs::remove(path);
    fs::remove(path + ".1");
    fs::remove(path + ".2");
}

// ---------------------------------------------------------------------
// Shared JSON escaping (satellite: metric names with quotes/backslashes/
// control characters must survive snapshot_json)
// ---------------------------------------------------------------------

TEST(JsonEscaping, EscapesQuotesBackslashesAndControlChars)
{
    std::ostringstream os;
    obs::json_escape(os, "a\"b\\c\nd\te\x01" "f");
    EXPECT_EQ(os.str(), "a\\\"b\\\\c\\nd\\te\\u0001f");
    EXPECT_EQ(obs::json_quoted("x\"y"), "\"x\\\"y\"");
}

TEST(JsonEscaping, MetricNamesSurviveSnapshotJson)
{
    obs::MetricsRegistry registry;
    const std::string nasty = "solve.\"quoted\\name";
    registry.add_named(nasty, 7);
    registry.add_named(std::string("ctrl.\x02.name"), 3);
    const std::string json = registry.snapshot_json();
    // No raw control bytes and no unescaped quote inside a name.
    for (const char ch : json) {
        EXPECT_TRUE(static_cast<unsigned char>(ch) >= 0x20 || ch == '\n');
    }
    EXPECT_NE(json.find("solve.\\\"quoted\\\\name"), std::string::npos);
    EXPECT_NE(json.find("ctrl.\\u0002.name"), std::string::npos);
    // And the document still parses, recovering the original names.
    obs::MetricsDocument doc;
    ASSERT_TRUE(obs::parse_metrics_json(json, doc));
    EXPECT_DOUBLE_EQ(doc.counter(nasty), 7.0);
}

// ---------------------------------------------------------------------
// Solver integration: trace-buffer knob, solve events, failure storm
// ---------------------------------------------------------------------

struct Problem {
    BatchCsr<real_type> a;
    BatchVector<real_type> b;
};

Problem make_problem(size_type nbatch)
{
    SyntheticStencilParams params;
    params.seed = 99;
    auto a = make_synthetic_batch(8, 7, StencilKind::nine_point, nbatch,
                                  params);
    BatchVector<real_type> b(nbatch, a.rows());
    Rng rng(7);
    for (size_type i = 0; i < nbatch; ++i) {
        for (auto& v : b.entry(i)) {
            v = rng.uniform(-1.0, 1.0);
        }
    }
    return {std::move(a), std::move(b)};
}

/// Global-telemetry fixture: flips the obs switches on and restores a
/// clean global state afterwards (the registries are process-global).
class MonitorIntegrationTest : public ::testing::Test {
protected:
    void SetUp() override
    {
        obs::set_metrics_enabled(true);
        obs::metrics().reset_values();
        obs::trace().clear();
        obs::trace().set_shard_capacity(1u << 20);
    }

    void TearDown() override
    {
        obs::close_events();
        obs::set_metrics_enabled(false);
        obs::set_trace_enabled(false);
        obs::trace().clear();
        obs::trace().set_shard_capacity(1u << 20);
        obs::metrics().reset_values();
    }
};

TEST_F(MonitorIntegrationTest, TraceBufferSettingDropsSpansButStaysValid)
{
    obs::set_trace_enabled(true);
    auto p = make_problem(6);
    SolverSettings settings;
    settings.trace_shard_capacity = 4;  // far below the spans of a solve
    BatchVector<real_type> x(p.a.num_batch(), p.a.rows());
    const auto result = solve_batch(p.a, p.b, x, settings);
    EXPECT_TRUE(result.log.all_converged());
    EXPECT_GT(obs::trace().dropped(), 0);
    obs::sync_trace_dropped_gauge();
    EXPECT_GT(obs::metrics().snapshot().gauge("obs.trace.dropped"), 0.0);
    // The emitted Chrome trace must stay valid JSON: balanced and closed.
    std::string json = obs::trace().chrome_trace_json();
    while (!json.empty() && std::isspace(static_cast<unsigned char>(
                                json.back()))) {
        json.pop_back();
    }
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST_F(MonitorIntegrationTest, SolveEmitsStartAndEndEvents)
{
    const std::string path = temp_path("solve_events");
    ASSERT_TRUE(obs::open_events(path));
    auto p = make_problem(4);
    SolverSettings settings;
    BatchVector<real_type> x(p.a.num_batch(), p.a.rows());
    solve_batch(p.a, p.b, x, settings);
    obs::close_events();

    const auto lines = read_lines(path);
    ASSERT_GE(lines.size(), 2u);
    EXPECT_NE(lines[0].find("\"event\": \"solve.start\""),
              std::string::npos);
    EXPECT_NE(lines[0].find("\"solver\": \"bicgstab\""),
              std::string::npos);
    EXPECT_NE(lines[1].find("\"event\": \"solve.end\""),
              std::string::npos);
    EXPECT_NE(lines[1].find("\"unconverged\": 0"), std::string::npos);
    fs::remove(path);
}

/// The end-to-end the issue asks for: a seeded failure storm drives the
/// default solve_failures alert through firing and resolved, visible in
/// the events log, the obs.alerts.* counters, and the promfile. The
/// promfile of the firing tick is kept for scripts/check.sh, which runs
/// `obs_top --once` on it and asserts the nonzero exit.
TEST_F(MonitorIntegrationTest, FailureStormFiresAndResolvesDefaultAlert)
{
    const std::string events_path = temp_path("storm_events");
    ASSERT_TRUE(obs::open_events(events_path));

    obs::MonitorConfig config;
    config.prom_path = temp_path("storm_prom");
    obs::Monitor monitor(obs::metrics(), config);

    auto p = make_problem(6);
    BatchVector<real_type> x(p.a.num_batch(), p.a.rows());
    SolverSettings storm;
    storm.max_iterations = 2;  // guaranteed max_iters failures
    storm.tolerance = 1e-30;

    // One failing solve BEFORE the first sample so the failure counters
    // exist (and get primed) at t=0 regardless of which tests ran earlier
    // in this process; rates then flow from the first storm tick. Without
    // this, a fresh process primes the counter on tick 1 and the rule
    // only reaches `pending` by tick 3.
    (void)solve_batch(p.a, p.b, x, storm);
    monitor.sample_at(0.0);
    // Failure storm: failing solves on every tick until the for-duration
    // (0.5 s) elapses.
    for (int tick = 1; tick <= 3; ++tick) {
        const auto result = solve_batch(p.a, p.b, x, storm);
        EXPECT_FALSE(result.log.all_converged());
        monitor.sample_at(0.3 * tick);
    }
    // The solve_failures rule must be firing; other default rules (e.g.
    // drift on these degenerate 2-iteration solves) may legitimately fire
    // alongside it.
    EXPECT_GE(monitor.firing(), 1);
    bool storm_firing = false;
    for (const auto& alert : monitor.alerts()) {
        if (alert.rule.name == "solve_failures") {
            storm_firing = alert.phase == obs::AlertPhase::firing;
            EXPECT_EQ(alert.fired, 1);
        }
    }
    EXPECT_TRUE(storm_firing);
    {
        const auto snap = obs::metrics().snapshot();
        EXPECT_GT(snap.counter("solve.fail.max_iters"), 0);
        EXPECT_GE(snap.counter("obs.alerts.fired"), 1);
    }
    // The promfile written on the firing tick: obs_top --once must see the
    // firing alert (checked binary-level by scripts/check.sh; here the
    // parsed document is asserted directly).
    const std::string firing_prom = read_file(config.prom_path);
    {
        obs::PromDocument doc;
        ASSERT_TRUE(obs::parse_prometheus_text(firing_prom, doc));
        EXPECT_GE(doc.value("bsis_alerts_firing"), 1.0);
        const auto* sample =
            doc.find("bsis_alert_firing", "alert", "solve_failures");
        ASSERT_NE(sample, nullptr);
        EXPECT_DOUBLE_EQ(sample->value, 1.0);
    }
    const std::string keep = keep_prom_path();
    if (!keep.empty()) {
        std::ofstream out(keep);
        out << firing_prom;
    }

    // Quiet ticks resolve the alert after the clear-side hysteresis.
    monitor.sample_at(1.5);
    monitor.sample_at(2.1);
    EXPECT_EQ(monitor.firing(), 0);
    {
        const auto snap = obs::metrics().snapshot();
        EXPECT_GE(snap.counter("obs.alerts.resolved"), 1);
        EXPECT_DOUBLE_EQ(snap.gauge("obs.alerts.firing"), 0.0);
    }
    obs::close_events();

    // The transitions are in the event log.
    const std::string events = read_file(events_path);
    EXPECT_NE(events.find("\"event\": \"alert.firing\""),
              std::string::npos);
    EXPECT_NE(events.find("\"alert\": \"solve_failures\""),
              std::string::npos);
    EXPECT_NE(events.find("\"event\": \"alert.resolved\""),
              std::string::npos);
    fs::remove(events_path);
    fs::remove(config.prom_path);
}

}  // namespace
}  // namespace bsis
