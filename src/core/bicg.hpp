// Batched classical BiCG kernel (Fletcher 1976).
//
// The two-sided ancestor of BiCGStab: it iterates a shadow system with
// A^T alongside the primal one, which is why BiCGStab (transpose-free,
// smoother) displaced it in practice -- the solver-comparison example
// makes that trade-off visible on the collision matrices. Requires the
// matrix format to provide spmv_transpose (all bsis formats do) and a
// SYMMETRIC preconditioner (Identity / scalar Jacobi / block Jacobi with
// symmetric blocks), so M^-T = M^-1.
#pragma once

#include <cmath>
#include <vector>

#include "blas/kernels.hpp"
#include "core/workspace.hpp"
#include "obs/telemetry.hpp"
#include "util/types.hpp"

namespace bsis {

/// Scratch vectors: r, r_hat, z, z_hat, p, p_hat, q, q_hat.
inline constexpr int bicg_work_vectors = 8;

/// `history`, when non-null, receives the residual norm at the top of
/// every iteration (same contract as `bicgstab_kernel`).
template <typename MatrixView, typename Prec, typename Stop>
EntryResult bicg_kernel(const MatrixView& a, ConstVecView<real_type> b,
                        VecView<real_type> x, const Prec& prec,
                        const Stop& stop, int max_iters, Workspace& ws,
                        int work_offset = 0,
                        std::vector<real_type>* history = nullptr)
{
    auto r = ws.slot(work_offset + 0);
    auto r_hat = ws.slot(work_offset + 1);
    auto z = ws.slot(work_offset + 2);
    auto z_hat = ws.slot(work_offset + 3);
    auto p = ws.slot(work_offset + 4);
    auto p_hat = ws.slot(work_offset + 5);
    auto q = ws.slot(work_offset + 6);
    auto q_hat = ws.slot(work_offset + 7);

    const real_type b_norm = blas::nrm2(b);

    obs::traced(obs::Phase::spmv, "spmv", [&] { spmv(a, ConstVecView<real_type>(x), r); });
    blas::axpby(real_type{1}, b, real_type{-1}, r);
    blas::copy(ConstVecView<real_type>(r), r_hat);
    real_type r_norm = obs::traced(
        obs::Phase::reduction, "reduction",
        [&] { return blas::nrm2(ConstVecView<real_type>(r)); });
    const real_type r0 = r_norm;

    obs::traced(obs::Phase::precond, "precond_apply", [&] {
        prec.apply(ConstVecView<real_type>(r), z);
        prec.apply(ConstVecView<real_type>(r_hat), z_hat);  // M symmetric
    });
    blas::copy(ConstVecView<real_type>(z), p);
    blas::copy(ConstVecView<real_type>(z_hat), p_hat);
    real_type rho = obs::traced(obs::Phase::reduction, "reduction", [&] {
        return blas::dot(ConstVecView<real_type>(z),
                         ConstVecView<real_type>(r_hat));
    });

    if (history != nullptr) {
        history->clear();
        history->push_back(r_norm);
    }
    for (int iter = 0; iter < max_iters; ++iter) {
        if (stop.done(r_norm, b_norm)) {
            return {iter, r_norm, true, FailureClass::converged};
        }
        if (!std::isfinite(r_norm)) {
            return {iter, r_norm, false, FailureClass::non_finite};
        }
        if (rho == real_type{0}) {
            return {iter, r_norm, false, FailureClass::breakdown_rho};
        }
        obs::traced(obs::Phase::spmv, "spmv", [&] {
            spmv(a, ConstVecView<real_type>(p), q);
            spmv_transpose(a, ConstVecView<real_type>(p_hat), q_hat);
        });
        const real_type pq = obs::traced(obs::Phase::reduction, "reduction", [&] {
            return blas::dot(ConstVecView<real_type>(p_hat),
                             ConstVecView<real_type>(q));
        });
        if (pq == real_type{0}) {
            // alpha = rho / pq undefined: rho-side breakdown.
            return {iter, r_norm, false, FailureClass::breakdown_rho};
        }
        const real_type alpha = rho / pq;
        blas::axpy(alpha, ConstVecView<real_type>(p), x);
        // r -= alpha * q fused with ||r||; shadow residual in a plain axpy.
        r_norm = obs::traced(obs::Phase::update, "update", [&] {
            const real_type rn =
                blas::axpy_nrm2(-alpha, ConstVecView<real_type>(q), r);
            blas::axpy(-alpha, ConstVecView<real_type>(q_hat), r_hat);
            return rn;
        });
        obs::traced(obs::Phase::precond, "precond_apply", [&] {
            prec.apply(ConstVecView<real_type>(r), z);
            prec.apply(ConstVecView<real_type>(r_hat), z_hat);
        });
        const real_type rho_new = obs::traced(obs::Phase::reduction, "reduction", [&] {
            return blas::dot(ConstVecView<real_type>(z),
                             ConstVecView<real_type>(r_hat));
        });
        const real_type beta = rho_new / rho;
        // Primal/shadow direction updates share their scalars: one loop.
        obs::traced(obs::Phase::update, "update", [&] {
            blas::axpby2(real_type{1}, ConstVecView<real_type>(z),
                         ConstVecView<real_type>(z_hat), beta, p, p_hat);
        });
        rho = rho_new;
        if (history != nullptr) {
            history->push_back(r_norm);
        }
    }
    {
        const bool done = stop.done(r_norm, b_norm);
        return {max_iters, r_norm, done,
                classify_exhausted(r_norm, r0, done)};
    }
}

}  // namespace bsis
