// Quickstart: solve a batch of small sparse systems with the batched
// BiCGStab solver.
//
// The workload is a batch of independent 9-point-stencil systems sharing
// one sparsity pattern -- the structure the batched formats exploit. Build
// and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Pass --sanitize to additionally replay the fused GPU kernel trace under
// the SIMT sanitizer (races / barrier divergence / bounds); the example
// then fails on any reported violation.
// Telemetry: --trace=FILE writes a Chrome trace of the solve's phase
// spans, --metrics-json=FILE a metrics snapshot (see examples/obs_cli.hpp).
#include <cstring>
#include <iostream>

#include "core/solver.hpp"
#include "exec/executor.hpp"
#include "matrix/conversions.hpp"
#include "matrix/stencil.hpp"
#include "obs_cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv)
{
    using namespace bsis;
    examples::ObsCli obs_cli(argc, argv);
    const bool sanitize =
        argc > 1 && std::strcmp(argv[1], "--sanitize") == 0;

    // 1. A batch of 64 independent systems on a 16 x 16 grid (256 rows
    //    each), all sharing the 9-point stencil pattern.
    const size_type num_batch = 64;
    const auto csr = make_synthetic_batch(16, 16, StencilKind::nine_point,
                                          num_batch, {});

    // 2. Convert to BatchEll: the right format for uniform short rows.
    const auto ell = to_ell(csr);

    // 3. Random right-hand sides, one per system.
    BatchVector<real_type> b(num_batch, csr.rows());
    Rng rng(42);
    for (size_type i = 0; i < num_batch; ++i) {
        for (auto& v : b.entry(i)) {
            v = rng.uniform(-1.0, 1.0);
        }
    }

    // 4. Compose the solver: BiCGStab + scalar Jacobi + absolute residual
    //    stopping at 1e-10 (the paper's configuration).
    SolverSettings settings;
    settings.solver = SolverType::bicgstab;
    settings.precond = PrecondType::jacobi;
    settings.stop = StopType::abs_residual;
    settings.tolerance = 1e-10;

    // 5. Solve the whole batch; every system is monitored individually.
    BatchVector<real_type> x(num_batch, csr.rows());
    const auto result = solve_batch(ell, b, x, settings);

    std::cout << "solved " << num_batch << " systems of "
              << csr.rows() << " rows in " << result.wall_seconds * 1e3
              << " ms\n"
              << "all converged:   "
              << (result.log.all_converged() ? "yes" : "no") << '\n'
              << "mean iterations: " << result.log.mean_iterations() << '\n'
              << "max iterations:  " << result.log.max_iterations() << '\n'
              << "residual(0):     " << result.log.residual_norm(0) << '\n';

    // 6. Optional: the same solve through the simulated-GPU executor with
    //    the SIMT sanitizer checking the traced fused kernel.
    if (sanitize) {
        SimGpuExecutor exec(gpusim::v100());
        exec.set_sanitize(true);
        BatchVector<real_type> x_gpu(num_batch, csr.rows());
        const auto report = exec.solve(ell, b, x_gpu, settings);
        std::cout << report.sanitizer.summary() << '\n';
        if (!report.sanitized || !report.sanitizer.clean()) {
            for (const auto& v : report.sanitizer.violations) {
                std::cerr << "  " << v.describe() << '\n';
            }
            return 1;
        }
    }
    return result.log.all_converged() ? 0 : 1;
}
