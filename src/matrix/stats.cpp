#include "matrix/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <vector>

#include "matrix/conversions.hpp"

namespace bsis {

MatrixStats compute_stats(const BatchCsr<real_type>& batch)
{
    MatrixStats stats;
    stats.rows = batch.rows();
    stats.nnz = batch.nnz_per_entry();
    const auto& ptrs = batch.row_ptrs();
    const auto& cols = batch.col_idxs();
    stats.min_nnz_per_row = std::numeric_limits<index_type>::max();
    for (index_type r = 0; r < stats.rows; ++r) {
        const index_type cnt = ptrs[r + 1] - ptrs[r];
        stats.min_nnz_per_row = std::min(stats.min_nnz_per_row, cnt);
        stats.max_nnz_per_row = std::max(stats.max_nnz_per_row, cnt);
    }
    stats.avg_nnz_per_row =
        stats.rows == 0 ? 0.0
                        : static_cast<double>(stats.nnz) / stats.rows;
    auto [kl, ku] = bandwidths(batch);
    stats.kl = kl;
    stats.ku = ku;

    // Pattern symmetry: (r, c) present iff (c, r) present. Column indices
    // are sorted within rows, so binary search works.
    const auto has_entry = [&](index_type r, index_type c) {
        const auto begin = cols.begin() + ptrs[r];
        const auto end = cols.begin() + ptrs[r + 1];
        return std::binary_search(begin, end, c);
    };
    const auto value_at = [&](size_type b, index_type r, index_type c) {
        const auto begin = cols.begin() + ptrs[r];
        const auto end = cols.begin() + ptrs[r + 1];
        const auto it = std::lower_bound(begin, end, c);
        if (it == end || *it != c) {
            return real_type{0};
        }
        return batch.values(b)[it - cols.begin()];
    };
    stats.pattern_symmetric = true;
    stats.numerically_symmetric = batch.num_batch() > 0;
    for (index_type r = 0; r < stats.rows && stats.pattern_symmetric; ++r) {
        for (index_type p = ptrs[r]; p < ptrs[r + 1]; ++p) {
            if (!has_entry(cols[p], r)) {
                stats.pattern_symmetric = false;
                stats.numerically_symmetric = false;
                break;
            }
        }
    }
    if (stats.pattern_symmetric && batch.num_batch() > 0) {
        const real_type tol = 1e-12;
        for (index_type r = 0;
             r < stats.rows && stats.numerically_symmetric; ++r) {
            for (index_type p = ptrs[r]; p < ptrs[r + 1]; ++p) {
                const real_type a_rc = batch.values(0)[p];
                const real_type a_cr = value_at(0, cols[p], r);
                const real_type scale =
                    std::max({std::abs(a_rc), std::abs(a_cr), real_type{1}});
                if (std::abs(a_rc - a_cr) > tol * scale) {
                    stats.numerically_symmetric = false;
                    break;
                }
            }
        }
    }

    if (batch.num_batch() > 0) {
        double min_dominance = std::numeric_limits<double>::infinity();
        const real_type* vals = batch.values(0);
        for (index_type r = 0; r < stats.rows; ++r) {
            double diag = 0.0;
            double off = 0.0;
            for (index_type p = ptrs[r]; p < ptrs[r + 1]; ++p) {
                if (cols[p] == r) {
                    diag = std::abs(vals[p]);
                } else {
                    off += std::abs(vals[p]);
                }
            }
            if (off > 0.0) {
                min_dominance = std::min(min_dominance, diag / off);
            }
        }
        stats.diagonal_dominance = min_dominance;
    }
    return stats;
}

StorageCost storage_cost(index_type rows, index_type nnz,
                         index_type max_nnz_per_row, size_type num_batch,
                         size_type value_bytes, size_type index_bytes,
                         index_type slice_size)
{
    StorageCost cost;
    cost.dense_bytes = num_batch * static_cast<size_type>(rows) * rows *
                       value_bytes;
    cost.csr_bytes = num_batch * static_cast<size_type>(nnz) * value_bytes +
                     static_cast<size_type>(rows + 1) * index_bytes +
                     static_cast<size_type>(nnz) * index_bytes;
    const size_type stored =
        static_cast<size_type>(rows) * max_nnz_per_row;
    cost.ell_bytes =
        num_batch * stored * value_bytes + stored * index_bytes;
    // SELL-P, uniform-pattern model: every slice is padded to the global
    // max row length (exact for the XGC stencils), including the partial
    // last slice, plus the shared slice-set prefix array.
    const size_type num_slices =
        (static_cast<size_type>(rows) + slice_size - 1) / slice_size;
    const size_type sellp_stored =
        num_slices * slice_size * max_nnz_per_row;
    cost.sellp_bytes = num_batch * sellp_stored * value_bytes +
                       sellp_stored * index_bytes +
                       (num_slices + 1) * index_bytes;
    return cost;
}

void print_pattern(std::ostream& os, const BatchCsr<real_type>& batch,
                   index_type max_rows)
{
    const index_type rows = std::min(batch.rows(), max_rows);
    const auto& ptrs = batch.row_ptrs();
    const auto& cols = batch.col_idxs();
    for (index_type r = 0; r < rows; ++r) {
        std::vector<char> line(static_cast<std::size_t>(rows), '.');
        for (index_type p = ptrs[r]; p < ptrs[r + 1]; ++p) {
            if (cols[p] < rows) {
                line[static_cast<std::size_t>(cols[p])] = '*';
            }
        }
        os.write(line.data(), rows);
        os << '\n';
    }
}

}  // namespace bsis
