file(REMOVE_RECURSE
  "libbsis_exec.a"
)
