# Empty compiler generated dependencies file for bsis_io.
# This may be replaced when dependencies are built.
