#include <gtest/gtest.h>

#include "core/storage_config.hpp"
#include "core/work_profile.hpp"
#include "gpusim/device.hpp"
#include "gpusim/occupancy.hpp"

namespace bsis {
namespace {

TEST(StorageConfig, PadsLengthToWarpMultiple)
{
    const auto cfg = configure_storage(bicgstab_slots(0), 991, 32, 8,
                                       1 << 20);
    EXPECT_EQ(cfg.padded_length, 992);
    const auto cfg64 = configure_storage(bicgstab_slots(0), 992, 64, 8,
                                         1 << 20);
    EXPECT_EQ(cfg64.padded_length, 1024);
}

TEST(StorageConfig, AllVectorsFitWithAmpleSharedMemory)
{
    const auto cfg = configure_storage(bicgstab_slots(1), 992, 32, 8,
                                       1 << 20);
    EXPECT_EQ(cfg.num_shared, 10);
    EXPECT_EQ(cfg.num_global, 0);
    EXPECT_EQ(cfg.shared_bytes, size_type{10} * 992 * 8);
}

TEST(StorageConfig, V100PlacesSixOfNineVectorsInShared)
{
    // The paper (Section IV-D): "On the V100, this method allocates 6
    // vectors in local shared memory, while the remaining 3 vectors are
    // allocated in global device memory."
    const auto& v100 = gpusim::v100();
    const auto cfg = configure_storage(
        bicgstab_slots(0), 992, v100.warp_size, sizeof(real_type),
        static_cast<size_type>(v100.max_shared_kib_per_block * 1024));
    EXPECT_EQ(cfg.num_shared, 6);
    EXPECT_EQ(cfg.num_global, 3);
}

TEST(StorageConfig, SpmvVectorsArePlacedFirst)
{
    // Capacity for exactly 4 vectors: the reds of Algorithm 1 must win.
    const size_type capacity = size_type{4} * 992 * 8;
    const auto cfg =
        configure_storage(bicgstab_slots(0), 992, 32, 8, capacity);
    EXPECT_EQ(cfg.num_shared, 4);
    EXPECT_TRUE(cfg.in_shared("p_hat"));
    EXPECT_TRUE(cfg.in_shared("v"));
    EXPECT_TRUE(cfg.in_shared("s_hat"));
    EXPECT_TRUE(cfg.in_shared("t"));
    EXPECT_FALSE(cfg.in_shared("r"));
    EXPECT_FALSE(cfg.in_shared("x"));
}

TEST(StorageConfig, PrecondStorageIsPlacedLast)
{
    const size_type capacity = size_type{9} * 992 * 8;
    const auto cfg =
        configure_storage(bicgstab_slots(1), 992, 32, 8, capacity);
    EXPECT_EQ(cfg.num_shared, 9);
    EXPECT_FALSE(cfg.in_shared("prec_0"));
}

TEST(StorageConfig, ZeroCapacitySpillsEverything)
{
    const auto cfg = configure_storage(bicgstab_slots(1), 992, 32, 8, 0);
    EXPECT_EQ(cfg.num_shared, 0);
    EXPECT_EQ(cfg.num_global, 10);
    EXPECT_EQ(cfg.shared_bytes, 0);
}

TEST(StorageConfig, UnknownSlotNameThrows)
{
    const auto cfg = configure_storage(bicgstab_slots(0), 32, 32, 8, 1024);
    EXPECT_THROW(cfg.in_shared("nonexistent"), BadArgument);
}

TEST(StorageConfig, SlotListsMatchSolverRequirements)
{
    EXPECT_EQ(bicgstab_slots(0).size(), 9u);
    EXPECT_EQ(bicgstab_slots(1).size(), 10u);
    EXPECT_EQ(cgs_slots(1).size(), 10u);
    EXPECT_EQ(cg_slots(1).size(), 6u);
    EXPECT_EQ(richardson_slots(0).size(), 3u);
    EXPECT_EQ(gmres_slots(30, 1).size(), 4u + 31u + 1u);
    EXPECT_THROW(gmres_slots(0, 0), BadArgument);
}

TEST(StorageConfig, PrecondWorkVectorsPerType)
{
    EXPECT_EQ(precond_work_vectors(PrecondType::identity), 0);
    EXPECT_EQ(precond_work_vectors(PrecondType::jacobi), 1);
    EXPECT_EQ(precond_work_vectors(PrecondType::block_jacobi, 8), 8);
}

TEST(Occupancy, PaperGpusGetExpectedBlocksPerCu)
{
    // BiCGStab on the 992-row systems: V100 2 blocks/SM, A100 2 blocks/SM,
    // MI100 1 block/CU (LDS-limited) -- the MI100 steps in Fig. 6 are at
    // multiples of 120 = 1 block x 120 CUs.
    const auto config_for = [](const gpusim::DeviceSpec& d) {
        return configure_storage(
            bicgstab_slots(1), 992, d.warp_size, sizeof(real_type),
            static_cast<size_type>(d.max_shared_kib_per_block * 1024));
    };
    const auto& v100 = gpusim::v100();
    const auto& a100 = gpusim::a100();
    const auto& mi100 = gpusim::mi100();
    EXPECT_EQ(gpusim::compute_occupancy(v100, 992,
                                        config_for(v100).shared_bytes)
                  .blocks_per_cu,
              2);
    EXPECT_EQ(gpusim::compute_occupancy(a100, 992,
                                        config_for(a100).shared_bytes)
                  .blocks_per_cu,
              2);
    EXPECT_EQ(gpusim::compute_occupancy(mi100, 1024,
                                        config_for(mi100).shared_bytes)
                  .blocks_per_cu,
              1);
    EXPECT_EQ(gpusim::compute_occupancy(mi100, 1024,
                                        config_for(mi100).shared_bytes)
                  .device_slots(mi100),
              120);
}

TEST(Occupancy, ThreadLimitCapsSmallBlocks)
{
    const auto& v100 = gpusim::v100();
    const auto occ = gpusim::compute_occupancy(v100, 64, 0);
    EXPECT_EQ(occ.blocks_per_cu, v100.max_blocks_per_cu);
    EXPECT_STREQ(occ.limiter, "blocks");
}

TEST(Occupancy, SharedLimitDominatesWhenLarge)
{
    const auto& v100 = gpusim::v100();
    // 100 KiB per block: only one fits in the 128 KiB carve-out.
    const auto occ = gpusim::compute_occupancy(v100, 128, 100 * 1024);
    EXPECT_EQ(occ.blocks_per_cu, 1);
    EXPECT_STREQ(occ.limiter, "shared");
}

TEST(Occupancy, RejectsEmptyBlocks)
{
    EXPECT_THROW(gpusim::compute_occupancy(gpusim::v100(), 0, 0),
                 BadArgument);
}

}  // namespace
}  // namespace bsis
