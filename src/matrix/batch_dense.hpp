// BatchDense: `num_batch` dense square matrices stored entry-major,
// row-major within each entry. Used as the conversion hub between formats
// and by the dense direct solvers; Figure 3 of the paper uses it as the
// storage-cost baseline.
#pragma once

#include <vector>

#include "blas/batch_vector.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace bsis {

/// View of one dense entry: row-major `rows x cols` block.
template <typename T>
struct DenseView {
    T* values = nullptr;
    index_type rows = 0;
    index_type cols = 0;

    T& operator()(index_type r, index_type c) const
    {
        return values[static_cast<std::size_t>(r) * cols + c];
    }
};

template <typename T>
struct ConstDenseView {
    const T* values = nullptr;
    index_type rows = 0;
    index_type cols = 0;

    ConstDenseView() = default;
    ConstDenseView(const T* v, index_type r, index_type c)
        : values(v), rows(r), cols(c)
    {}
    ConstDenseView(DenseView<T> v) : values(v.values), rows(v.rows), cols(v.cols)
    {}

    const T& operator()(index_type r, index_type c) const
    {
        return values[static_cast<std::size_t>(r) * cols + c];
    }
};

template <typename T>
class BatchDense {
public:
    BatchDense() = default;

    BatchDense(size_type num_batch, index_type rows, index_type cols)
        : num_batch_(num_batch),
          rows_(rows),
          cols_(cols),
          values_(static_cast<std::size_t>(num_batch) * rows * cols, T{})
    {
        BSIS_ENSURE_ARG(num_batch >= 0 && rows >= 0 && cols >= 0,
                        "negative dimension");
    }

    size_type num_batch() const { return num_batch_; }
    index_type rows() const { return rows_; }
    index_type cols() const { return cols_; }

    /// Bytes of value storage (Fig. 3 accounting).
    size_type storage_bytes() const
    {
        return static_cast<size_type>(values_.size() * sizeof(T));
    }

    DenseView<T> entry(size_type b)
    {
        BSIS_ASSERT(b >= 0 && b < num_batch_);
        return {values_.data() +
                    static_cast<std::size_t>(b) * rows_ * cols_,
                rows_, cols_};
    }

    ConstDenseView<T> entry(size_type b) const
    {
        BSIS_ASSERT(b >= 0 && b < num_batch_);
        return {values_.data() +
                    static_cast<std::size_t>(b) * rows_ * cols_,
                rows_, cols_};
    }

    T* data() { return values_.data(); }
    const T* data() const { return values_.data(); }

private:
    size_type num_batch_ = 0;
    index_type rows_ = 0;
    index_type cols_ = 0;
    std::vector<T> values_;
};

/// y := A x for one dense entry.
template <typename T>
inline void spmv(ConstDenseView<T> a, ConstVecView<T> x, VecView<T> y)
{
    BSIS_ASSERT(a.cols == x.len && a.rows == y.len);
    for (index_type r = 0; r < a.rows; ++r) {
        T sum{};
        for (index_type c = 0; c < a.cols; ++c) {
            sum += a(r, c) * x[c];
        }
        y[r] = sum;
    }
}

/// y := A^T x for one dense entry (used by BiCG).
template <typename T>
inline void spmv_transpose(ConstDenseView<T> a, ConstVecView<T> x,
                           VecView<T> y)
{
    BSIS_ASSERT(a.rows == x.len && a.cols == y.len);
    for (index_type c = 0; c < a.cols; ++c) {
        T sum{};
        for (index_type r = 0; r < a.rows; ++r) {
            sum += a(r, c) * x[r];
        }
        y[c] = sum;
    }
}

/// Extracts the diagonal of one dense entry (scalar-Jacobi setup).
template <typename T>
inline void extract_diagonal(ConstDenseView<T> a, VecView<T> diag)
{
    BSIS_ASSERT(diag.len == a.rows && a.rows == a.cols);
    for (index_type r = 0; r < a.rows; ++r) {
        diag[r] = a(r, r);
    }
}

}  // namespace bsis
