#include "gpusim/sanitizer.hpp"

#include <sstream>

#include "util/error.hpp"

namespace bsis::gpusim {

const char* to_string(ViolationKind kind)
{
    switch (kind) {
    case ViolationKind::write_read_race:
        return "write-read race";
    case ViolationKind::read_write_race:
        return "read-write race";
    case ViolationKind::write_write_race:
        return "write-write race";
    case ViolationKind::barrier_divergence:
        return "barrier divergence";
    case ViolationKind::shared_oob:
        return "shared out-of-bounds";
    case ViolationKind::global_oob:
        return "global out-of-bounds";
    }
    return "unknown";
}

std::string Violation::describe() const
{
    std::ostringstream out;
    out << to_string(kind) << " in " << kernel << ": warp " << warp;
    if (lane >= 0) {
        out << " lane " << lane;
    }
    out << " at 0x" << std::hex << address << std::dec << " (epoch "
        << epoch;
    if (other_warp == -2) {
        out << ", conflicts with several warps";
    } else if (other_warp >= 0) {
        out << ", conflicts with warp " << other_warp;
    }
    out << ")";
    return out.str();
}

std::string SanitizerReport::summary() const
{
    if (clean()) {
        return "sanitizer: clean (0 violations)";
    }
    std::ostringstream out;
    out << "sanitizer: " << total_violations << " violation(s): " << races
        << " race(s), " << barrier_divergences
        << " barrier divergence(s), " << oob_accesses
        << " out-of-bounds access(es)";
    return out.str();
}

Sanitizer::Sanitizer(int max_recorded) : max_recorded_(max_recorded)
{
    BSIS_ENSURE_ARG(max_recorded >= 0, "negative violation cap");
}

void Sanitizer::register_buffer(std::string name, std::uint64_t base,
                                size_type bytes)
{
    BSIS_ENSURE_ARG(bytes >= 0, "negative buffer size");
    buffers_.push_back({std::move(name), base, bytes});
}

void Sanitizer::begin_block()
{
    shadow_.clear();
    epoch_ = 0;
}

void Sanitizer::record(ViolationKind kind, int warp, int other_warp,
                       int lane, std::uint64_t address)
{
    ++report_.total_violations;
    switch (kind) {
    case ViolationKind::write_read_race:
    case ViolationKind::read_write_race:
    case ViolationKind::write_write_race:
        ++report_.races;
        break;
    case ViolationKind::barrier_divergence:
        ++report_.barrier_divergences;
        break;
    case ViolationKind::shared_oob:
    case ViolationKind::global_oob:
        ++report_.oob_accesses;
        break;
    }
    if (static_cast<int>(report_.violations.size()) < max_recorded_) {
        report_.violations.push_back(
            {kind, kernel_, warp, other_warp, lane, address, epoch_});
    }
}

void Sanitizer::on_shared_access(int warp,
                                 const std::vector<std::uint64_t>& addrs,
                                 int bytes_per_lane, bool is_write)
{
    for (std::size_t lane = 0; lane < addrs.size(); ++lane) {
        const auto addr = addrs[lane];
        const auto bytes = static_cast<std::uint64_t>(bytes_per_lane);
        if (shared_limit_ >= 0 &&
            addr + bytes > static_cast<std::uint64_t>(shared_limit_)) {
            record(ViolationKind::shared_oob, warp,
                   /*other_warp=*/-1, static_cast<int>(lane), addr);
            continue;  // outside the allocation: no meaningful race state
        }
        bool reported = false;  // at most one race per lane access
        for (std::uint64_t g = addr / granule_bytes;
             g <= (addr + bytes - 1) / granule_bytes; ++g) {
            auto& cell = shadow_[g];
            if (is_write) {
                if (!reported && cell.write_epoch == epoch_ &&
                    cell.writer_warp != warp) {
                    record(ViolationKind::write_write_race, warp,
                           cell.writer_warp, static_cast<int>(lane), addr);
                    reported = true;
                }
                if (!reported && cell.read_epoch == epoch_ &&
                    cell.reader_warp != warp) {
                    record(ViolationKind::read_write_race, warp,
                           cell.reader_warp, static_cast<int>(lane), addr);
                    reported = true;
                }
                cell.write_epoch = epoch_;
                cell.writer_warp = warp;
            } else {
                if (!reported && cell.write_epoch == epoch_ &&
                    cell.writer_warp != warp) {
                    record(ViolationKind::write_read_race, warp,
                           cell.writer_warp, static_cast<int>(lane), addr);
                    reported = true;
                }
                if (cell.read_epoch != epoch_) {
                    cell.read_epoch = epoch_;
                    cell.reader_warp = warp;
                } else if (cell.reader_warp != warp) {
                    cell.reader_warp = -2;  // several reader warps
                }
            }
        }
    }
}

void Sanitizer::on_global_access(int warp,
                                 const std::vector<std::uint64_t>& addrs,
                                 int bytes_per_lane, bool is_write)
{
    (void)is_write;
    if (buffers_.empty()) {
        return;  // bounds checking not armed
    }
    for (std::size_t lane = 0; lane < addrs.size(); ++lane) {
        const auto first = addrs[lane];
        const auto last =
            first + static_cast<std::uint64_t>(bytes_per_lane) - 1;
        if (!inside_registered_buffer(first, last)) {
            record(ViolationKind::global_oob, warp, /*other_warp=*/-1,
                   static_cast<int>(lane), first);
        }
    }
}

bool Sanitizer::inside_registered_buffer(std::uint64_t first,
                                         std::uint64_t last) const
{
    for (const auto& buf : buffers_) {
        if (first >= buf.base &&
            last < buf.base + static_cast<std::uint64_t>(buf.bytes)) {
            return true;
        }
    }
    return false;
}

void Sanitizer::on_barrier(int active_threads, int block_threads)
{
    if (active_threads < block_threads) {
        record(ViolationKind::barrier_divergence, /*warp=*/-1,
               /*other_warp=*/-1, /*lane=*/-1,
               static_cast<std::uint64_t>(active_threads));
    }
    ++epoch_;
}

}  // namespace bsis::gpusim
