# Empty compiler generated dependencies file for xgc_collision_app.
# This may be replaced when dependencies are built.
