// Table III of the paper: number of BiCGStab iterations needed for the
// linear solve inside successive Picard iterations, using the previous
// Picard iterate as the initial guess (BatchEll arithmetic, absolute
// tolerance 1e-10). Paper values: electron 30, 28, 20, 16, 12 and ion
// 5, 4, 3, 2, 2.
#include <iostream>

#include "common.hpp"

int main()
{
    using namespace bsis;

    xgc::WorkloadParams wp;
    wp.num_mesh_nodes = bench::quick_mode() ? 4 : 16;
    xgc::CollisionWorkload workload(wp);

    SolverSettings settings;
    settings.tolerance = 1e-10;
    settings.max_iterations = 500;

    const auto solver = [&](const BatchCsr<real_type>& a,
                            const BatchVector<real_type>& b,
                            BatchVector<real_type>& x, bool warm,
                            int /*k*/) {
        auto ell = to_ell(a);
        SolverSettings local = settings;
        local.use_initial_guess = warm;
        return solve_batch(ell, b, x, local).log;
    };
    const auto report =
        implicit_collision_step(workload, xgc::PicardSettings{}, solver);

    Table table({"picard_iteration", "iters_electron", "iters_ion",
                 "paper_electron", "paper_ion"});
    const int paper_electron[5] = {30, 28, 20, 16, 12};
    const int paper_ion[5] = {5, 4, 3, 2, 2};
    for (int k = 0; k < report.picard_iterations; ++k) {
        table.new_row()
            .add(k)
            .add(report.mean_species_iterations(k, 1, 2), 3)
            .add(report.mean_species_iterations(k, 0, 2), 3)
            .add(k < 5 ? paper_electron[k] : 0)
            .add(k < 5 ? paper_ion[k] : 0);
    }
    bench::emit("table3_picard",
                "Table III: linear iterations per warm-started Picard "
                "iteration (mean over the batch)",
                table);
    std::cout << "\nConservation error after the step (with XGC-style "
                 "moment fix): "
              << report.max_conservation_error() << "\n";
    std::cout << "Nonlinear residual at the last Picard iterate: "
              << report.nonlinear_change << "\n";
    return 0;
}
