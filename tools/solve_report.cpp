// solve_report: renders a metrics-JSON snapshot (plus optional Chrome
// trace) into the human-readable performance-attribution report, and
// gates CI on drift alarms / bandwidth sanity.
//
// Usage:
//   solve_report METRICS.json [--trace=TRACE.json] [--out=REPORT.txt]
//                [--gate-drift] [--gate-bandwidth]
//
// Exit status: 0 on success; 1 on I/O or parse errors; 2 when a
// requested gate fails (drift alarms present, or a phase's achieved
// bandwidth falls outside (0, peak]).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/report.hpp"

namespace {

bool read_file(const std::string& path, std::string& out)
{
    std::ifstream in(path);
    if (!in) {
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

void usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s METRICS.json [--trace=TRACE.json] "
                 "[--out=REPORT.txt] [--gate-drift] [--gate-bandwidth]\n",
                 argv0);
}

}  // namespace

int main(int argc, char** argv)
{
    std::string metrics_path;
    std::string trace_path;
    std::string out_path;
    bool gate_drift = false;
    bool gate_bandwidth = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--trace=", 0) == 0) {
            trace_path = arg.substr(8);
        } else if (arg.rfind("--out=", 0) == 0) {
            out_path = arg.substr(6);
        } else if (arg == "--gate-drift") {
            gate_drift = true;
        } else if (arg == "--gate-bandwidth") {
            gate_bandwidth = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(argv[0]);
            return 1;
        } else if (metrics_path.empty()) {
            metrics_path = arg;
        } else {
            std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
            usage(argv[0]);
            return 1;
        }
    }
    if (metrics_path.empty()) {
        usage(argv[0]);
        return 1;
    }

    bsis::obs::MetricsDocument metrics;
    if (!bsis::obs::load_metrics_json(metrics_path, metrics)) {
        std::fprintf(stderr, "solve_report: cannot read or parse %s\n",
                     metrics_path.c_str());
        return 1;
    }

    std::map<std::string, bsis::obs::TraceSpanStats> trace_spans;
    if (!trace_path.empty()) {
        std::string trace_text;
        if (!read_file(trace_path, trace_text) ||
            !bsis::obs::summarize_trace_json(trace_text, trace_spans)) {
            std::fprintf(stderr,
                         "solve_report: cannot read or parse trace %s\n",
                         trace_path.c_str());
            return 1;
        }
    }

    const auto report = bsis::obs::render_solve_report(metrics, trace_spans);
    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out) {
            std::fprintf(stderr, "solve_report: cannot write %s\n",
                         out_path.c_str());
            return 1;
        }
        out << report.text;
    } else {
        std::cout << report.text;
    }

    int status = 0;
    if (gate_drift && report.drift_alarms > 0) {
        std::fprintf(stderr,
                     "solve_report: DRIFT GATE FAILED (%d alarm(s))\n",
                     report.drift_alarms);
        status = 2;
    }
    if (gate_bandwidth && report.bandwidth_violations > 0) {
        std::fprintf(
            stderr,
            "solve_report: BANDWIDTH GATE FAILED (%d violation(s))\n",
            report.bandwidth_violations);
        status = 2;
    }
    return status;
}
