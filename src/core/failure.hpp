// Per-system failure taxonomy (solve forensics).
//
// The paper's Listing 1 LogType tells the caller only WHETHER each system
// of the batch converged; for a production XGC run the outer implicit loop
// needs to know WHY a solve failed -- a Krylov breakdown calls for a
// direct-solve retry, a non-finite residual means the physics assembled a
// poisoned operator, stagnation points at the preconditioner. Every solver
// kernel classifies its own exit; the class travels through EntryResult,
// BatchLogStage, and BatchLog to the obs metrics (`solve.fail.*`) and the
// flight recorder.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <string>

#include "util/types.hpp"

namespace bsis {

/// Why a system's solve ended. `converged` is the success class; all
/// others describe a failure mode. The breakdown classes split the Krylov
/// "serious breakdown" by which coefficient became undefined: the
/// rho-side inner products (rho, the alpha denominator) or the
/// omega-side ones (omega itself, its t.t denominator).
enum class FailureClass : std::uint8_t {
    converged = 0,     ///< stopping criterion met
    max_iters,         ///< iteration limit hit while still making progress
    breakdown_rho,     ///< rho-side inner product vanished (Krylov space
                       ///  cannot be extended / alpha undefined)
    breakdown_omega,   ///< omega-side coefficient vanished (stabilization
                       ///  step undefined)
    stagnated,         ///< iteration limit hit with no residual progress
    non_finite,        ///< residual became NaN/Inf (poisoned input or
                       ///  overflow); detected promptly, solve abandoned
};

inline constexpr int num_failure_classes = 6;

/// Counts per FailureClass, indexed by the enum value.
using FailureCounts = std::array<std::int64_t, num_failure_classes>;

inline const char* failure_class_name(FailureClass c)
{
    switch (c) {
    case FailureClass::converged:
        return "converged";
    case FailureClass::max_iters:
        return "max_iters";
    case FailureClass::breakdown_rho:
        return "breakdown_rho";
    case FailureClass::breakdown_omega:
        return "breakdown_omega";
    case FailureClass::stagnated:
        return "stagnated";
    case FailureClass::non_finite:
        return "non_finite";
    }
    return "unknown";
}

/// Inverse of failure_class_name; returns false when `name` matches no
/// class (out param untouched). Used by the bundle replay path.
inline bool failure_class_from_name(const std::string& name,
                                    FailureClass& out)
{
    for (int i = 0; i < num_failure_classes; ++i) {
        const auto c = static_cast<FailureClass>(i);
        if (name == failure_class_name(c)) {
            out = c;
            return true;
        }
    }
    return false;
}

/// A solve that exhausts its iteration budget is `stagnated` rather than
/// `max_iters` when the final residual kept at least this fraction of the
/// initial residual -- i.e. the whole run bought less than 1% reduction.
/// Classification only; the exit point of the solve is unchanged, so the
/// numerical results stay bit-identical across paths.
inline constexpr real_type stagnation_threshold = real_type{0.99};

/// Classifies an iteration-limit exit from the final residual norm and the
/// initial residual norm `r0`. All kernels and all three execution paths
/// share this rule, so a system classifies identically wherever it runs.
inline FailureClass classify_exhausted(real_type r_norm, real_type r0,
                                       bool converged)
{
    if (converged) {
        return FailureClass::converged;
    }
    if (!std::isfinite(r_norm)) {
        return FailureClass::non_finite;
    }
    if (!(r_norm < stagnation_threshold * r0)) {
        return FailureClass::stagnated;
    }
    return FailureClass::max_iters;
}

}  // namespace bsis
