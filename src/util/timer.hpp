// Wall-clock timing utilities used by benchmarks and the executors.
#pragma once

#include <chrono>
#include <cstdint>

namespace bsis {

/// Monotonic wall-clock timer with nanosecond resolution.
class Timer {
public:
    Timer() { reset(); }

    /// Restarts the timer.
    void reset();

    /// Seconds elapsed since construction or the last reset().
    double seconds() const;

    /// Milliseconds elapsed since construction or the last reset().
    double milliseconds() const { return seconds() * 1e3; }

    /// Microseconds elapsed since construction or the last reset().
    double microseconds() const { return seconds() * 1e6; }

private:
    std::chrono::steady_clock::time_point start_;
};

/// Accumulates wall time over repeated start/stop intervals, tracking the
/// number of laps so callers can report means.
class StopWatch {
public:
    void start() { running_ = true, lap_.reset(); }

    void stop();

    double total_seconds() const { return total_; }

    std::int64_t laps() const { return laps_; }

    /// Mean seconds per recorded lap (0 if no laps yet).
    double mean_seconds() const
    {
        return laps_ == 0 ? 0.0 : total_ / static_cast<double>(laps_);
    }

private:
    Timer lap_;
    double total_ = 0.0;
    std::int64_t laps_ = 0;
    bool running_ = false;
};

}  // namespace bsis
