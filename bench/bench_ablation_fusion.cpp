// Ablations for the Section IV design choices:
//   1. Single fused solver kernel vs one kernel launch per solver
//      component (the launch-overhead argument for the fused design).
//   2. Shared-memory placement of the intermediate vectors vs all vectors
//      spilled to global memory (the Section IV-D argument).
// Both are evaluated with the per-block cost model on every device.
#include <iostream>

#include "common.hpp"
#include "gpusim/cost_model.hpp"
#include "gpusim/occupancy.hpp"

int main()
{
    using namespace bsis;
    using namespace bsis::gpusim;

    const SystemShape shape{992, 9 * 992, 9};
    // Fused profile: the sweep structure of the single-pass kernels.
    // Unfused profile: one sweep per BLAS call (the reference path).
    const auto work_fused =
        work_profile(SolverType::bicgstab, PrecondType::jacobi);
    const auto work_unfused =
        work_profile(SolverType::bicgstab, PrecondType::jacobi, 30, 4,
                     /*fused=*/false);
    const int iterations = 20;
    const size_type nbatch = 960;

    Table table({"device", "variant", "total_ms", "vs_fused"});
    int count = 0;
    const auto* gpus = all_gpus(count);
    for (int g = 0; g < count; ++g) {
        const auto& device = gpus[g];
        const auto block_threads =
            ell_block_size(shape.rows, device.warp_size);

        const auto kernel_time = [&](const StorageConfig& config,
                                     const SolverWorkProfile& work,
                                     double launches_per_solve) {
            const auto occ = compute_occupancy(device, block_threads,
                                               config.shared_bytes);
            const auto cost =
                block_cost(device, shape, BatchFormat::ell, block_threads,
                           config, work, occ.blocks_per_cu);
            std::vector<double> durations(
                static_cast<std::size_t>(nbatch),
                cost.block_us(iterations) * 1e-6);
            const auto schedule = schedule_blocks(
                durations, occ.device_slots(device), device.scheduling);
            return schedule.makespan_seconds +
                   launches_per_solve * device.launch_overhead_us * 1e-6;
        };

        const auto fused_config = configure_storage(
            bicgstab_slots(1), shape.rows, device.warp_size,
            sizeof(real_type),
            static_cast<size_type>(device.max_shared_kib_per_block * 1024));
        // Fully fused: ONE launch for the entire batched solve, single-pass
        // sweeps, shared-memory placement.
        const double fused = kernel_time(fused_config, work_fused, 1.0);

        // Sweep-fusion ablation alone: still one launch and the shared
        // placement, but one sweep per BLAS call (the pre-fusion host
        // path).
        const double unfused_sweeps =
            kernel_time(fused_config, work_unfused, 1.0);

        // Component kernels: every SpMV / dot / axpy / precond apply is a
        // separate launch, each iteration of every wave.
        const double ops_per_iteration =
            work_unfused.spmv_per_iter + work_unfused.precond_per_iter +
            work_unfused.dots_per_iter + work_unfused.axpys_per_iter;
        // Per-component launches cannot keep data in shared memory across
        // kernels (nor fuse sweeps): the unfused variant also loses the
        // placement.
        const auto spilled_config =
            configure_storage(bicgstab_slots(1), shape.rows,
                              device.warp_size, sizeof(real_type), 0);
        const double unfused = kernel_time(spilled_config, work_unfused,
                                           ops_per_iteration * iterations);

        // Shared-memory ablation alone: fused launch count and sweeps, but
        // nothing placed in shared memory.
        const double no_shared =
            kernel_time(spilled_config, work_fused, 1.0);

        table.new_row()
            .add(device.name)
            .add("fused + shared placement")
            .add(fused * 1e3, 5)
            .add(1.0, 3);
        table.new_row()
            .add(device.name)
            .add("fused launch, unfused sweeps")
            .add(unfused_sweeps * 1e3, 5)
            .add(unfused_sweeps / fused, 3);
        table.new_row()
            .add(device.name)
            .add("fused, no shared placement")
            .add(no_shared * 1e3, 5)
            .add(no_shared / fused, 3);
        table.new_row()
            .add(device.name)
            .add("kernel per component")
            .add(unfused * 1e3, 5)
            .add(unfused / fused, 3);
    }
    bench::emit("ablation_fusion",
                "Ablation: fused solver kernel and shared-memory placement "
                "(960 systems, 20 iterations/solve, BiCGStab-ELL)",
                table);
    std::cout << "\nShape check (paper Section IV: the fused kernel avoids "
                 "per-component\nlaunch overhead and keeps intermediate "
                 "vectors in shared memory; both\nablations must cost "
                 "more than the fused design)\n";
    return 0;
}
