// Fig. 7 of the paper: total time of the batched SpMV kernels for the
// BatchCsr and BatchEll formats on the A100, isolating the matrix-format
// effect from the solver. Also reports the measured host wall time of the
// functional kernels (this machine) for the record.
#include <iostream>

#include "common.hpp"
#include "util/timer.hpp"

int main()
{
    using namespace bsis;
    using bsis::bench::XgcBatch;

    const SimGpuExecutor a100(gpusim::a100());
    const gpusim::SystemShape shape{992, 9 * 992, 9};

    Table table({"batch", "csr_modeled_us", "ell_modeled_us",
                 "csr_over_ell", "csr_host_ms", "ell_host_ms"});
    for (const auto nbatch : bench::batch_sizes()) {
        const double csr_t =
            a100.spmv_seconds(shape, BatchFormat::csr, nbatch);
        const double ell_t =
            a100.spmv_seconds(shape, BatchFormat::ell, nbatch);

        // Measured host execution of the functional kernels.
        XgcBatch problem(nbatch);
        auto ell = to_ell(problem.a);
        BatchVector<real_type> y(nbatch, problem.a.rows());
        Timer timer;
        for (size_type i = 0; i < nbatch; ++i) {
            spmv(problem.a.entry(i),
                 ConstVecView<real_type>(problem.rhs().entry(i)),
                 y.entry(i));
        }
        const double csr_host = timer.seconds();
        timer.reset();
        for (size_type i = 0; i < nbatch; ++i) {
            spmv(ell.entry(i),
                 ConstVecView<real_type>(problem.rhs().entry(i)),
                 y.entry(i));
        }
        const double ell_host = timer.seconds();

        table.new_row()
            .add(nbatch)
            .add(csr_t * 1e6, 5)
            .add(ell_t * 1e6, 5)
            .add(csr_t / ell_t, 3)
            .add(csr_host * 1e3, 4)
            .add(ell_host * 1e3, 4);
    }
    bench::emit("fig7_spmv",
                "Fig. 7: batched SpMV kernel time on the A100 (modeled) "
                "and on this host (measured)",
                table);
    std::cout << "\nShape check (paper: BatchEll is the superior format for "
                 "the 9-pt stencil SpMV at every batch size)\n";
    return 0;
}
