// Automatic solver configuration (paper contribution 3: "an automatic
// tuning strategy depending on the size of the matrix").
//
// Given the shared sparsity pattern of a batch, the tuner picks (a) the
// matrix format -- ELL when the rows are uniform enough that padding costs
// little and the rows are short enough that CSR's warp-per-row reduction
// would underutilize the warp, CSR otherwise -- and (b) the thread-block
// size used by the simulated GPU kernels.
#pragma once

#include "matrix/stats.hpp"
#include "util/types.hpp"

namespace bsis {

enum class BatchFormat { csr, ell };

struct TuningChoice {
    BatchFormat format = BatchFormat::ell;
    index_type block_size = 256;      ///< threads per simulated block
    double ell_padding_overhead = 0;  ///< padded/actual nonzeros - 1
    const char* reason = "";
};

/// Picks the batch format and block size for a pattern on a device with
/// the given warp size.
TuningChoice tune(const MatrixStats& stats, index_type warp_size,
                  index_type max_block_size = 1024);

/// Thread-block size for an ELL kernel: one thread per row, rounded up to
/// a warp multiple and clamped to the device limit.
index_type ell_block_size(index_type rows, index_type warp_size,
                          index_type max_block_size = 1024);

/// Thread-block size for a CSR kernel: one warp per row, as many warps as
/// fit (paper Section IV-E).
index_type csr_block_size(index_type rows, index_type warp_size,
                          index_type max_block_size = 1024);

}  // namespace bsis
