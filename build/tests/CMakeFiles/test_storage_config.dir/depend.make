# Empty dependencies file for test_storage_config.
# This may be replaced when dependencies are built.
