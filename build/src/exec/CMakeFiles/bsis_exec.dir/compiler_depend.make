# Empty compiler generated dependencies file for bsis_exec.
# This may be replaced when dependencies are built.
