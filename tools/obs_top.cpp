// obs_top: a refresh-loop text dashboard over the live monitor's
// Prometheus exposition (see DESIGN.md, "Live monitoring").
//
// Point it at the promfile a monitored run rewrites every tick
// (`--prom=FILE` on any example), or at the localhost scrape endpoint
// (`--prom-port=N`):
//
//   obs_top /tmp/solved.prom                # refresh every second
//   obs_top --port=9464                     # scrape 127.0.0.1:9464
//   obs_top --once /tmp/solved.prom         # one screen; exit 1 if any
//                                           # alert is firing (CI-gateable)
//
// The screen shows solver throughput, iteration quantiles, failure and
// drift rates, the per-phase bandwidth/roofline table, and every alert
// rule's state -- all read from the exposition, no PromQL needed (the
// monitor publishes `_per_sec` rate gauges alongside each counter).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "obs/monitor.hpp"

namespace {

using bsis::obs::PromDocument;
using bsis::obs::PromSample;

int usage(const char* argv0)
{
    std::cerr
        << "usage: " << argv0
        << " [--once] [--interval=SECONDS] [--port=N | PROMFILE]\n"
           "  PROMFILE        promfile rewritten by a --prom=FILE run\n"
           "  --port=N        scrape http://127.0.0.1:N instead\n"
           "  --once          render one screen; exit 1 if any alert is\n"
           "                  firing, 2 if the exposition is unreadable\n"
           "  --interval=S    refresh period in loop mode (default 1)\n";
    return 2;
}

/// Minimal GET / against the monitor's localhost endpoint; returns false
/// on any socket failure.
bool scrape_http(int port, std::string& body)
{
#ifdef _WIN32
    (void)port;
    (void)body;
    return false;
#else
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
        ::close(fd);
        return false;
    }
    const char request[] =
        "GET /metrics HTTP/1.1\r\nHost: localhost\r\n"
        "Connection: close\r\n\r\n";
    if (::write(fd, request, sizeof(request) - 1) < 0) {
        ::close(fd);
        return false;
    }
    std::string response;
    char buf[4096];
    for (;;) {
        const auto n = ::read(fd, buf, sizeof(buf));
        if (n <= 0) {
            break;
        }
        response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    const auto split = response.find("\r\n\r\n");
    if (split == std::string::npos) {
        return false;
    }
    body = response.substr(split + 4);
    return true;
#endif
}

bool read_exposition(const std::string& promfile, int port,
                     PromDocument& doc)
{
    if (port > 0) {
        std::string body;
        return scrape_http(port, body) &&
               bsis::obs::parse_prometheus_text(body, doc);
    }
    return bsis::obs::load_prometheus_file(promfile, doc);
}

void print_rate_line(const PromDocument& doc, const char* label,
                     const std::string& metric)
{
    const double total = doc.value(metric);
    const double rate = doc.value(metric + "_per_sec");
    if (doc.has(metric)) {
        std::printf("  %-22s %12.0f total  %10.2f /s\n", label, total,
                    rate);
    }
}

/// Sums `<prefix><class>` and its `_per_sec` over the failure classes and
/// prints one line per nonzero class plus the total.
void print_failures(const PromDocument& doc, const char* label,
                    const std::string& prefix)
{
    static const char* const classes[] = {"max_iters", "breakdown_rho",
                                          "breakdown_omega", "stagnated",
                                          "non_finite"};
    double total = 0;
    double rate = 0;
    bool any = false;
    for (const char* c : classes) {
        const std::string name = prefix + c;
        if (doc.has(name)) {
            any = true;
            total += doc.value(name);
            rate += doc.value(name + "_per_sec");
        }
    }
    if (!any) {
        return;
    }
    std::printf("  %-22s %12.0f total  %10.2f /s", label, total, rate);
    if (total > 0) {
        std::printf("   [");
        bool first = true;
        for (const char* c : classes) {
            const double v = doc.value(prefix + c);
            if (v > 0) {
                std::printf("%s%s=%.0f", first ? "" : " ", c, v);
                first = false;
            }
        }
        std::printf("]");
    }
    std::printf("\n");
}

void print_quantiles(const PromDocument& doc, const char* label,
                     const std::string& metric)
{
    const auto* p50 = doc.find(metric, "quantile", "0.5");
    const auto* p95 = doc.find(metric, "quantile", "0.95");
    if (p50 == nullptr || p95 == nullptr) {
        return;
    }
    std::printf("  %-22s p50 %10.3g   p95 %10.3g   count %.0f\n", label,
                p50->value, p95->value, doc.value(metric + "_count"));
}

void print_phase_table(const PromDocument& doc)
{
    static const char* const phases[] = {"spmv", "precond_apply",
                                         "reduction", "update", "other"};
    bool header = false;
    for (const char* phase : phases) {
        const std::string base = "bsis_solve_phase_" + std::string(phase) +
                                 "_";
        if (!doc.has(base + "gbps")) {
            continue;
        }
        if (!header) {
            std::printf("\nper-phase attribution (last solve)\n");
            std::printf("  %-15s %10s %10s %8s %10s\n", "phase", "GB/s",
                        "GF/s", "%peak", "seconds");
            header = true;
        }
        std::printf("  %-15s %10.2f %10.2f %7.1f%% %10.3g\n", phase,
                    doc.value(base + "gbps"), doc.value(base + "gflops"),
                    100.0 * doc.value(base + "peak_fraction"),
                    doc.value(base + "seconds"));
    }
}

/// Renders one screen; returns the number of firing alerts.
int render(const PromDocument& doc)
{
    const double exported_at = doc.value("bsis_monitor_unix_time");
    const double now =
        std::chrono::duration<double>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    std::printf("obs_top -- tick %.0f, exposition age %.1fs\n",
                doc.value("bsis_monitor_ticks"),
                std::max(0.0, now - exported_at));

    std::printf("\nthroughput\n");
    print_rate_line(doc, "batches", "bsis_solve_batches");
    print_rate_line(doc, "systems", "bsis_solve_systems");
    print_rate_line(doc, "iterations", "bsis_solve_iterations");
    print_rate_line(doc, "picard steps", "bsis_xgc_picard_steps");
    print_rate_line(doc, "gpusim solves", "bsis_gpusim_solves");

    std::printf("\nlatency / iterations\n");
    print_quantiles(doc, "iterations/system",
                    "bsis_solve_system_iterations");
    print_quantiles(doc, "batch wall seconds", "bsis_solve_wall_seconds");
    if (doc.has("bsis_solve_last_wall_seconds")) {
        std::printf("  %-22s %10.3gs\n", "last batch wall",
                    doc.value("bsis_solve_last_wall_seconds"));
    }

    std::printf("\nfailures / drift\n");
    print_failures(doc, "solver failures", "bsis_solve_fail_");
    print_failures(doc, "gpusim failures", "bsis_gpusim_fail_");
    print_failures(doc, "xgc failures", "bsis_xgc_fail_");
    print_rate_line(doc, "unconverged systems", "bsis_solve_unconverged");
    print_rate_line(doc, "drift checks", "bsis_obs_drift_checks");
    print_rate_line(doc, "drift alarms", "bsis_obs_drift_alarms");
    if (doc.has("bsis_obs_trace_dropped")) {
        std::printf("  %-22s %12.0f\n", "trace spans dropped",
                    doc.value("bsis_obs_trace_dropped"));
    }

    print_phase_table(doc);

    std::printf("\nalerts (fired %.0f, resolved %.0f)\n",
                doc.value("bsis_obs_alerts_fired"),
                doc.value("bsis_obs_alerts_resolved"));
    int firing = 0;
    for (const auto& s : doc.samples) {
        if (s.name != "bsis_alert_firing") {
            continue;
        }
        const auto it = s.labels.find("alert");
        const std::string name =
            it == s.labels.end() ? "?" : it->second;
        const bool on = s.value > 0;
        firing += on ? 1 : 0;
        std::printf("  %-22s %s\n", name.c_str(), on ? "FIRING" : "ok");
    }
    std::fflush(stdout);
    return firing;
}

}  // namespace

int main(int argc, char** argv)
{
    std::string promfile;
    int port = 0;
    bool once = false;
    double interval = 1.0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--once") == 0) {
            once = true;
        } else if (std::strncmp(argv[i], "--interval=", 11) == 0) {
            interval = std::atof(argv[i] + 11);
        } else if (std::strncmp(argv[i], "--port=", 7) == 0) {
            port = std::atoi(argv[i] + 7);
        } else if (argv[i][0] == '-') {
            return usage(argv[0]);
        } else {
            promfile = argv[i];
        }
    }
    if (promfile.empty() && port <= 0) {
        return usage(argv[0]);
    }

    for (;;) {
        PromDocument doc;
        const bool ok = read_exposition(promfile, port, doc);
        if (!once) {
            std::printf("\x1b[2J\x1b[H");  // clear screen, home cursor
        }
        int firing = 0;
        if (ok) {
            firing = render(doc);
        } else {
            std::printf("obs_top: no exposition at %s yet\n",
                        port > 0 ? ("127.0.0.1:" + std::to_string(port))
                                       .c_str()
                                 : promfile.c_str());
        }
        if (once) {
            return ok ? (firing > 0 ? 1 : 0) : 2;
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double>(std::max(0.1, interval)));
    }
}
