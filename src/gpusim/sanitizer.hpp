// SIMT sanitizer: shared-memory race, barrier-divergence, and
// out-of-bounds detection for traced kernels.
//
// The fused batched solver places solver vectors in the block's shared
// memory (Section IV-D), which is exactly the setting where a missing
// __syncthreads() or an overrun of the configured shared allocation
// silently corrupts results. The sanitizer attaches to a BlockTracer and
// observes its addressed accesses:
//
//   * Races: a ThreadSanitizer-style epoch model. Every block-wide barrier
//     advances an epoch counter; two shared-memory accesses that touch
//     overlapping bytes FROM DIFFERENT WARPS IN THE SAME EPOCH, at least
//     one of them a write, are unordered (no happens-before edge) and are
//     reported as a race. Accesses from the SAME warp are lockstep-ordered
//     by the SIMT execution model and never race by construction.
//   * Barrier divergence: a barrier issued with an active thread count
//     smaller than the block's thread count (some threads will never
//     arrive -- deadlock or undefined behaviour on real hardware).
//   * Bounds: shared accesses are checked against the block's configured
//     shared-memory allocation (set_shared_limit, from the StorageConfig);
//     global accesses are checked against registered buffer extents
//     (register_buffer) when any are registered.
//
// The sanitizer is observation-only: it never alters counters, cache
// state, or the trace itself.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace bsis::gpusim {

/// Classification of a sanitizer finding.
enum class ViolationKind {
    write_read_race,   ///< read of a location written this epoch
    read_write_race,   ///< write of a location read this epoch
    write_write_race,  ///< write of a location written this epoch
    barrier_divergence,
    shared_oob,
    global_oob,
};

const char* to_string(ViolationKind kind);

/// One sanitizer finding with full attribution.
struct Violation {
    ViolationKind kind{};
    std::string kernel;        ///< traced kernel issuing the access
    int warp = -1;             ///< warp issuing the offending access
    int other_warp = -1;       ///< prior conflicting warp (races; -2 = many)
    int lane = -1;             ///< lane index within the access
    std::uint64_t address = 0; ///< byte address (shared: block offset)
    std::int64_t epoch = 0;    ///< barrier interval of the access

    std::string describe() const;
};

/// Aggregate result of a sanitized trace (possibly several blocks).
struct SanitizerReport {
    std::vector<Violation> violations;  ///< first `max_recorded` findings
    std::int64_t total_violations = 0;  ///< every finding, recorded or not
    std::int64_t races = 0;
    std::int64_t barrier_divergences = 0;
    std::int64_t oob_accesses = 0;

    bool clean() const { return total_violations == 0; }
    std::string summary() const;
};

/// Race / divergence / bounds checker attachable to a BlockTracer.
class Sanitizer {
public:
    explicit Sanitizer(int max_recorded = 64);

    /// Enables shared-memory bounds checking against `bytes` (the block's
    /// configured shared allocation). Negative disables (the default).
    void set_shared_limit(size_type bytes) { shared_limit_ = bytes; }

    /// Registers a global buffer [base, base + bytes) for bounds checking.
    /// Once any buffer is registered, every global access must fall
    /// entirely inside a registered buffer.
    void register_buffer(std::string name, std::uint64_t base,
                         size_type bytes);
    void clear_buffers() { buffers_.clear(); }

    /// Labels subsequent findings with the traced kernel's name.
    void set_kernel(std::string name) { kernel_ = std::move(name); }

    /// Starts a fresh block: clears the shadow state and epoch counter but
    /// keeps the accumulated report (so one report can cover a batch).
    void begin_block();

    std::int64_t epoch() const { return epoch_; }
    const SanitizerReport& report() const { return report_; }

    // --- hooks called by BlockTracer -----------------------------------
    void on_shared_access(int warp, const std::vector<std::uint64_t>& addrs,
                          int bytes_per_lane, bool is_write);
    void on_global_access(int warp, const std::vector<std::uint64_t>& addrs,
                          int bytes_per_lane, bool is_write);
    void on_barrier(int active_threads, int block_threads);

private:
    /// Per-granule shadow cell: the last write and the readers of the
    /// current read epoch. reader_warp == -2 means several warps read the
    /// granule in that epoch.
    struct Shadow {
        std::int64_t write_epoch = -1;
        int writer_warp = -1;
        std::int64_t read_epoch = -1;
        int reader_warp = -1;
    };

    static constexpr std::uint64_t granule_bytes = 4;

    void record(ViolationKind kind, int warp, int other_warp, int lane,
                std::uint64_t address);
    bool inside_registered_buffer(std::uint64_t first,
                                  std::uint64_t last) const;

    struct Buffer {
        std::string name;
        std::uint64_t base = 0;
        size_type bytes = 0;
    };

    int max_recorded_;
    size_type shared_limit_ = -1;
    std::vector<Buffer> buffers_;
    std::string kernel_ = "<untraced>";
    std::int64_t epoch_ = 0;
    std::unordered_map<std::uint64_t, Shadow> shadow_;
    SanitizerReport report_;
};

}  // namespace bsis::gpusim
