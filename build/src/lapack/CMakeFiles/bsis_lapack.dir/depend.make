# Empty dependencies file for bsis_lapack.
# This may be replaced when dependencies are built.
