// BatchCsr: batch of sparse matrices sharing one CSR sparsity pattern.
//
// As in Section IV-A of the paper, the column indices and row pointers are
// stored once for the whole batch; only the nonzero values are replicated
// per batch entry. Storage cost (paper's formula):
//   num_matrices * nnz * sizeof(value)
//   + (rows + 1) * sizeof(index) + nnz * sizeof(index)
#pragma once

#include <algorithm>
#include <vector>

#include "blas/batch_vector.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace bsis {

/// One entry of a BatchCsr: shared pattern + this entry's values.
template <typename T>
struct CsrView {
    index_type rows = 0;
    const index_type* row_ptrs = nullptr;
    const index_type* col_idxs = nullptr;
    const T* values = nullptr;

    index_type nnz() const { return row_ptrs[rows]; }
};

template <typename T>
class BatchCsr {
public:
    BatchCsr() = default;

    /// Builds the batch from a shared pattern; values are zero-initialized.
    BatchCsr(size_type num_batch, index_type rows,
             std::vector<index_type> row_ptrs,
             std::vector<index_type> col_idxs)
        : num_batch_(num_batch),
          rows_(rows),
          row_ptrs_(std::move(row_ptrs)),
          col_idxs_(std::move(col_idxs))
    {
        BSIS_ENSURE_ARG(num_batch >= 0, "negative batch count");
        BSIS_ENSURE_DIMS(
            static_cast<index_type>(row_ptrs_.size()) == rows + 1,
            "row_ptrs must have rows+1 entries");
        BSIS_ENSURE_DIMS(row_ptrs_.front() == 0, "row_ptrs[0] must be 0");
        for (index_type r = 0; r < rows; ++r) {
            BSIS_ENSURE_DIMS(row_ptrs_[r] <= row_ptrs_[r + 1],
                             "row_ptrs must be non-decreasing");
            max_nnz_per_row_ = std::max(max_nnz_per_row_,
                                        row_ptrs_[r + 1] - row_ptrs_[r]);
        }
        BSIS_ENSURE_DIMS(static_cast<index_type>(col_idxs_.size()) ==
                             row_ptrs_.back(),
                         "col_idxs size must equal row_ptrs[rows]");
        values_.assign(
            static_cast<std::size_t>(num_batch) * row_ptrs_.back(), T{});
    }

    size_type num_batch() const { return num_batch_; }
    index_type rows() const { return rows_; }
    index_type nnz_per_entry() const { return row_ptrs_.back(); }

    /// Longest row of the shared pattern (the ELL width the batch would
    /// convert to). Computed once at construction -- the executors consult
    /// it per solve, so it must not rescan row_ptrs.
    index_type max_nnz_per_row() const { return max_nnz_per_row_; }

    const std::vector<index_type>& row_ptrs() const { return row_ptrs_; }
    const std::vector<index_type>& col_idxs() const { return col_idxs_; }

    /// Bytes of storage: values + shared pattern (Fig. 3 accounting).
    size_type storage_bytes() const
    {
        return static_cast<size_type>(values_.size() * sizeof(T) +
                                      row_ptrs_.size() * sizeof(index_type) +
                                      col_idxs_.size() * sizeof(index_type));
    }

    CsrView<T> entry(size_type b) const
    {
        BSIS_ASSERT(b >= 0 && b < num_batch_);
        return {rows_, row_ptrs_.data(), col_idxs_.data(),
                values_.data() +
                    static_cast<std::size_t>(b) * nnz_per_entry()};
    }

    T* values(size_type b)
    {
        BSIS_ASSERT(b >= 0 && b < num_batch_);
        return values_.data() + static_cast<std::size_t>(b) * nnz_per_entry();
    }

    const T* values(size_type b) const
    {
        BSIS_ASSERT(b >= 0 && b < num_batch_);
        return values_.data() + static_cast<std::size_t>(b) * nnz_per_entry();
    }

    T* data() { return values_.data(); }
    const T* data() const { return values_.data(); }

private:
    size_type num_batch_ = 0;
    index_type rows_ = 0;
    index_type max_nnz_per_row_ = 0;
    std::vector<index_type> row_ptrs_;
    std::vector<index_type> col_idxs_;
    std::vector<T> values_;
};

/// y := A x for one CSR entry.
template <typename T>
inline void spmv(CsrView<T> a, ConstVecView<T> x, VecView<T> y)
{
    BSIS_ASSERT(y.len == a.rows);
    for (index_type r = 0; r < a.rows; ++r) {
        T sum{};
        for (index_type k = a.row_ptrs[r]; k < a.row_ptrs[r + 1]; ++k) {
            sum += a.values[k] * x[a.col_idxs[k]];
        }
        y[r] = sum;
    }
}

/// y := A^T x for one CSR entry (scatter form; used by BiCG).
template <typename T>
inline void spmv_transpose(CsrView<T> a, ConstVecView<T> x, VecView<T> y)
{
    BSIS_ASSERT(x.len == a.rows);
    for (index_type c = 0; c < y.len; ++c) {
        y[c] = T{};
    }
    for (index_type r = 0; r < a.rows; ++r) {
        for (index_type k = a.row_ptrs[r]; k < a.row_ptrs[r + 1]; ++k) {
            y[a.col_idxs[k]] += a.values[k] * x[r];
        }
    }
}

/// Extracts the diagonal of one CSR entry (scalar-Jacobi setup).
template <typename T>
inline void extract_diagonal(CsrView<T> a, VecView<T> diag)
{
    BSIS_ASSERT(diag.len == a.rows);
    for (index_type r = 0; r < a.rows; ++r) {
        diag[r] = T{};
        for (index_type k = a.row_ptrs[r]; k < a.row_ptrs[r + 1]; ++k) {
            if (a.col_idxs[k] == r) {
                diag[r] = a.values[k];
            }
        }
    }
}

}  // namespace bsis
