// Fig. 6 of the paper: time taken by the different solvers, with the two
// batch matrix formats, on every platform, as a function of batch size.
// Left plot = total time per batched solve, right plot = time per batch
// entry (both columns below).
//
// Series reproduced:
//   * batched BiCGStab + scalar Jacobi, BatchCsr and BatchEll, on the
//     modeled V100 / A100 / MI100 (functional solve on the host feeds the
//     per-system iteration counts into the device cost model),
//   * LAPACK dgbsv distributed over the 38 cores of the Skylake node,
//   * the batched sparse direct QR (cuSolver stand-in) on the V100.
//
// Batches mix equal numbers of ion and electron matrices at absolute
// tolerance 1e-10, exactly as in the paper's evaluation.
//
// Pass --sanitize to run every GPU solve with the SIMT sanitizer attached;
// the bench exits nonzero on any reported violation.
#include <cstring>
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv)
{
    using namespace bsis;
    using bsis::bench::XgcBatch;

    const bool sanitize =
        argc > 1 && std::strcmp(argv[1], "--sanitize") == 0;

    SolverSettings settings;
    settings.tolerance = 1e-10;
    settings.max_iterations = 500;

    SimGpuExecutor v100(gpusim::v100());
    SimGpuExecutor a100(gpusim::a100());
    SimGpuExecutor mi100(gpusim::mi100());
    v100.set_sanitize(sanitize);
    a100.set_sanitize(sanitize);
    mi100.set_sanitize(sanitize);
    std::int64_t violations = 0;
    const CpuExecutor skylake;

    Table table({"batch", "series", "total_ms", "us_per_entry"});
    Table iters({"batch", "mean_iters_ion", "mean_iters_electron",
                 "max_iters"});

    for (const auto nbatch : bench::batch_sizes()) {
        XgcBatch problem(nbatch);
        auto ell = to_ell(problem.a);
        BatchVector<real_type> x(nbatch, problem.a.rows());

        const auto add_row = [&](const std::string& series, double seconds) {
            table.new_row()
                .add(nbatch)
                .add(series)
                .add(seconds * 1e3, 5)
                .add(seconds * 1e6 / static_cast<double>(nbatch), 5);
        };

        for (const auto* exec : {&v100, &a100, &mi100}) {
            const auto csr_report =
                exec->solve(problem.a, problem.rhs(), x, settings);
            add_row("bicgstab-csr-" + exec->device().name,
                    csr_report.kernel_seconds);
            const auto ell_report =
                exec->solve(ell, problem.rhs(), x, settings);
            add_row("bicgstab-ell-" + exec->device().name,
                    ell_report.kernel_seconds);
            violations += csr_report.sanitizer.total_violations +
                          ell_report.sanitizer.total_violations;
            if (exec == &v100) {
                // Convergence statistics (same arithmetic on every
                // device; report once).
                double ion = 0;
                double ele = 0;
                for (size_type i = 0; i < nbatch; i += 2) {
                    ion += ell_report.log.iterations(i);
                    ele += ell_report.log.iterations(i + 1);
                }
                iters.new_row()
                    .add(nbatch)
                    .add(ion / (nbatch / 2.0), 4)
                    .add(ele / (nbatch / 2.0), 4)
                    .add(ell_report.log.max_iterations());
            }
        }

        const auto cpu_report = skylake.gbsv(problem.a, problem.rhs(), x);
        add_row("dgbsv-skylake-38cores", cpu_report.node_seconds);

        const auto [kl, ku] = bandwidths(problem.a);
        add_row("cusolver-qr-V100",
                v100.direct_qr_seconds(problem.a.rows(), kl, ku, nbatch));
    }

    bench::emit("fig6_solvers",
                "Fig. 6: solver time vs batch size (total and per entry)",
                table);
    bench::emit("fig6_iterations",
                "Fig. 6 support: zero-guess BiCGStab iteration counts",
                iters);

    std::cout
        << "\nShape checks (paper):\n"
           "  * batched QR ~10-30x slower than BiCGStab-CSR on the V100\n"
           "  * ELL significantly faster than CSR on all three GPUs\n"
           "  * dgbsv on Skylake beats QR-V100 and CSR-MI100, loses to the "
           "rest\n"
           "  * per-entry time falls with batch size (GPU saturation)\n"
           "  * MI100 total time steps at multiples of 120 systems\n";
    if (sanitize) {
        std::cout << "sanitizer: " << violations << " violation(s)\n";
    }
    return violations == 0 ? 0 : 1;
}
