// Per-thread solver workspace.
//
// On the GPU, one thread block owns one system's intermediate vectors
// (shared memory plus a global spill block). On the host, the batch driver
// allocates one Workspace per OpenMP thread and reuses it across the
// systems that thread processes, so no allocation happens inside the solve
// loop.
#pragma once

#include <vector>

#include "blas/batch_vector.hpp"
#include "core/failure.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace bsis {

/// Fixed number of equal-length scratch vectors, handed out as views.
class Workspace {
public:
    Workspace() = default;

    Workspace(index_type length, int num_slots)
        : length_(length),
          num_slots_(num_slots),
          storage_(static_cast<std::size_t>(length) * num_slots, 0.0)
    {
        BSIS_ENSURE_ARG(length >= 0 && num_slots >= 0,
                        "negative workspace size");
    }

    index_type length() const { return length_; }
    int num_slots() const { return num_slots_; }

    /// Adopts the requested shape exactly; the backing storage grows but
    /// never shrinks, so repeated solves of any already-seen size do no
    /// allocation. The shape must track the request exactly -- not the
    /// historical maximum -- because slots are handed to kernels and
    /// preconditioners as full-length views: after a 992-row solve, a
    /// 56-row solve must get 56-long slots, not 992-long ones.
    void require(index_type length, int num_slots)
    {
        BSIS_ENSURE_ARG(length >= 0 && num_slots >= 0,
                        "negative workspace size");
        const auto need =
            static_cast<std::size_t>(length) * num_slots;
        if (need > storage_.size()) {
            storage_.assign(need, 0.0);
        }
        length_ = length;
        num_slots_ = num_slots;
    }

    VecView<real_type> slot(int i)
    {
        BSIS_ASSERT(i >= 0 && i < num_slots_);
        return {storage_.data() + static_cast<std::size_t>(i) * length_,
                length_};
    }

private:
    index_type length_ = 0;
    int num_slots_ = 0;
    std::vector<real_type> storage_;
};

/// Per-thread workspace pool, persistent across batched solves.
///
/// `run_batch` used to allocate one Workspace per OpenMP thread on EVERY
/// call, which dominates small-batch solve time when callers loop (the
/// Picard driver re-solves the same-shaped batch every nonlinear
/// iteration; the benches re-solve it per repetition). The pool grows but
/// never shrinks, so after the first solve of a given shape, repeated
/// solves do no allocation at all. Intended use is one pool per calling
/// thread (a `thread_local` in the solve driver), indexed by the OpenMP
/// thread id inside the parallel region.
class WorkspacePool {
public:
    /// Grows the pool to `num_threads` workspaces of at least
    /// (`length` x `num_slots`) each. Call OUTSIDE the parallel region:
    /// growing the vector may relocate the workspaces.
    void require(int num_threads, index_type length, int num_slots)
    {
        BSIS_ENSURE_ARG(num_threads >= 0, "negative thread count");
        if (static_cast<int>(workspaces_.size()) < num_threads) {
            workspaces_.resize(static_cast<std::size_t>(num_threads));
        }
        for (auto& ws : workspaces_) {
            ws.require(length, num_slots);
        }
    }

    int num_threads() const
    {
        return static_cast<int>(workspaces_.size());
    }

    Workspace& at(int thread)
    {
        BSIS_ASSERT(thread >= 0 &&
                    thread < static_cast<int>(workspaces_.size()));
        return workspaces_[static_cast<std::size_t>(thread)];
    }

private:
    std::vector<Workspace> workspaces_;
};

/// Per-system solve outcome returned by the solver kernels. `failure`
/// carries the kernel's classification of the exit (FailureClass::converged
/// when `converged` is true).
struct EntryResult {
    int iterations = 0;
    real_type residual_norm = 0.0;
    bool converged = false;
    FailureClass failure = FailureClass::max_iters;
};

}  // namespace bsis
