#include "xgc/grid.hpp"

#include <numbers>

#include "util/error.hpp"

namespace bsis::xgc {

VelocityGrid::VelocityGrid(index_type n_vpar, index_type n_vperp,
                           real_type vpar_extent, real_type vperp_extent)
    : n_vpar_(n_vpar),
      n_vperp_(n_vperp),
      vpar_extent_(vpar_extent),
      vperp_extent_(vperp_extent)
{
    BSIS_ENSURE_ARG(n_vpar >= 4 && n_vperp >= 4, "grid too small");
    BSIS_ENSURE_ARG(vpar_extent > 0 && vperp_extent > 0,
                    "extents must be positive");
    dvpar_ = 2 * vpar_extent_ / n_vpar_;
    dvperp_ = vperp_extent_ / n_vperp_;
}

real_type VelocityGrid::cell_volume(index_type j) const
{
    return 2 * std::numbers::pi_v<real_type> * vperp(j) * dvpar_ * dvperp_;
}

}  // namespace bsis::xgc
