#include "io/matrix_market.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <numeric>
#include <sstream>

#include "util/error.hpp"

namespace bsis::io {

namespace {

/// Reads the MatrixMarket banner and skips comments; returns the banner
/// tokens (lower-cased).
std::vector<std::string> read_banner(std::istream& is)
{
    std::string line;
    if (!std::getline(is, line)) {
        throw ParseError("matrix_market", "empty stream");
    }
    std::istringstream banner(line);
    std::vector<std::string> tokens;
    std::string tok;
    while (banner >> tok) {
        std::transform(tok.begin(), tok.end(), tok.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        tokens.push_back(tok);
    }
    if (tokens.size() < 3 || tokens[0] != "%%matrixmarket") {
        throw ParseError("matrix_market", "missing %%MatrixMarket banner");
    }
    return tokens;
}

/// Parses one real value, accepting the "nan" / "inf" spellings that
/// operator>> rejects -- flight-recorder bundles of diverged solves
/// legitimately contain non-finite values.
bool parse_real(std::istream& is, real_type& out)
{
    std::string tok;
    if (!(is >> tok)) {
        return false;
    }
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0') {
        return false;
    }
    out = static_cast<real_type>(v);
    return true;
}

std::string next_data_line(std::istream& is)
{
    std::string line;
    while (std::getline(is, line)) {
        if (!line.empty() && line[0] != '%') {
            return line;
        }
    }
    throw ParseError("matrix_market", "unexpected end of file");
}

}  // namespace

void write_matrix(std::ostream& os, const Coo& coo)
{
    os << "%%MatrixMarket matrix coordinate real general\n";
    os << coo.rows << ' ' << coo.cols << ' ' << coo.values.size() << '\n';
    os << std::setprecision(17);
    for (std::size_t k = 0; k < coo.values.size(); ++k) {
        os << coo.row_idxs[k] + 1 << ' ' << coo.col_idxs[k] + 1 << ' '
           << coo.values[k] << '\n';
    }
}

Coo read_matrix(std::istream& is)
{
    const auto banner = read_banner(is);
    if (banner[2] != "coordinate") {
        throw ParseError("read_matrix", "expected coordinate format");
    }
    const bool symmetric =
        banner.size() >= 5 && banner[4] == "symmetric";

    std::istringstream header(next_data_line(is));
    index_type rows = 0;
    index_type cols = 0;
    std::int64_t nnz = 0;
    if (!(header >> rows >> cols >> nnz) || rows < 0 || cols < 0 ||
        nnz < 0) {
        throw ParseError("read_matrix", "bad size header");
    }
    Coo coo;
    coo.rows = rows;
    coo.cols = cols;
    for (std::int64_t k = 0; k < nnz; ++k) {
        std::istringstream entry(next_data_line(is));
        index_type r = 0;
        index_type c = 0;
        real_type v = 0;
        if (!(entry >> r >> c) || !parse_real(entry, v) || r < 1 ||
            r > rows || c < 1 || c > cols) {
            throw ParseError("read_matrix",
                             "bad entry at nonzero " + std::to_string(k));
        }
        coo.row_idxs.push_back(r - 1);
        coo.col_idxs.push_back(c - 1);
        coo.values.push_back(v);
        if (symmetric && r != c) {
            coo.row_idxs.push_back(c - 1);
            coo.col_idxs.push_back(r - 1);
            coo.values.push_back(v);
        }
    }
    return coo;
}

void write_vector(std::ostream& os, ConstVecView<real_type> v)
{
    os << "%%MatrixMarket matrix array real general\n";
    os << v.len << " 1\n";
    os << std::setprecision(17);
    for (index_type i = 0; i < v.len; ++i) {
        os << v[i] << '\n';
    }
}

std::vector<real_type> read_vector(std::istream& is)
{
    const auto banner = read_banner(is);
    if (banner[2] != "array") {
        throw ParseError("read_vector", "expected array format");
    }
    std::istringstream header(next_data_line(is));
    index_type rows = 0;
    index_type cols = 0;
    if (!(header >> rows >> cols) || rows < 0 || cols != 1) {
        throw ParseError("read_vector", "expected an n x 1 array");
    }
    std::vector<real_type> v;
    v.reserve(static_cast<std::size_t>(rows));
    for (index_type i = 0; i < rows; ++i) {
        std::istringstream entry(next_data_line(is));
        real_type value = 0;
        if (!parse_real(entry, value)) {
            throw ParseError("read_vector",
                             "bad value at row " + std::to_string(i));
        }
        v.push_back(value);
    }
    return v;
}

Coo to_coo(const BatchCsr<real_type>& batch, size_type entry)
{
    BSIS_ENSURE_ARG(entry >= 0 && entry < batch.num_batch(),
                    "entry out of range");
    Coo coo;
    coo.rows = batch.rows();
    coo.cols = batch.rows();
    const auto view = batch.entry(entry);
    for (index_type r = 0; r < view.rows; ++r) {
        for (index_type p = view.row_ptrs[r]; p < view.row_ptrs[r + 1];
             ++p) {
            coo.row_idxs.push_back(r);
            coo.col_idxs.push_back(view.col_idxs[p]);
            coo.values.push_back(view.values[p]);
        }
    }
    return coo;
}

BatchCsr<real_type> from_coo(const std::vector<Coo>& entries)
{
    BSIS_ENSURE_ARG(!entries.empty(), "need at least one entry");
    const auto& first = entries.front();
    BSIS_ENSURE_DIMS(first.rows == first.cols, "entries must be square");

    // Sort the first entry's triplets into CSR order to define the shared
    // pattern.
    std::vector<std::size_t> order(first.values.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (first.row_idxs[a] != first.row_idxs[b]) {
            return first.row_idxs[a] < first.row_idxs[b];
        }
        return first.col_idxs[a] < first.col_idxs[b];
    });
    std::vector<index_type> row_ptrs(
        static_cast<std::size_t>(first.rows) + 1, 0);
    std::vector<index_type> col_idxs(first.values.size());
    for (std::size_t k = 0; k < order.size(); ++k) {
        ++row_ptrs[static_cast<std::size_t>(
                       first.row_idxs[order[k]]) +
                   1];
        col_idxs[k] = first.col_idxs[order[k]];
    }
    for (index_type r = 0; r < first.rows; ++r) {
        row_ptrs[static_cast<std::size_t>(r) + 1] +=
            row_ptrs[static_cast<std::size_t>(r)];
    }

    BatchCsr<real_type> batch(static_cast<size_type>(entries.size()),
                              first.rows, row_ptrs, std::move(col_idxs));
    const auto& ptrs = batch.row_ptrs();
    const auto& cols = batch.col_idxs();
    for (std::size_t e = 0; e < entries.size(); ++e) {
        const auto& coo = entries[e];
        BSIS_ENSURE_DIMS(coo.rows == first.rows &&
                             coo.values.size() == first.values.size(),
                         "batch entries must share the sparsity pattern");
        real_type* vals = batch.values(static_cast<size_type>(e));
        for (std::size_t k = 0; k < coo.values.size(); ++k) {
            const index_type r = coo.row_idxs[k];
            const index_type c = coo.col_idxs[k];
            const auto begin = cols.begin() + ptrs[r];
            const auto end = cols.begin() + ptrs[r + 1];
            const auto it = std::lower_bound(begin, end, c);
            if (it == end || *it != c) {
                throw DimensionMismatch(
                    "from_coo", "entry " + std::to_string(e) +
                                    " deviates from the shared pattern");
            }
            vals[it - cols.begin()] = coo.values[k];
        }
    }
    return batch;
}

void write_batch(const std::string& root, const BatchCsr<real_type>& a,
                 const BatchVector<real_type>& b)
{
    BSIS_ENSURE_DIMS(a.num_batch() == b.num_batch(),
                     "matrix/rhs batch counts must match");
    namespace fs = std::filesystem;
    for (size_type i = 0; i < a.num_batch(); ++i) {
        const fs::path dir = fs::path(root) / std::to_string(i);
        fs::create_directories(dir);
        std::ofstream am(dir / "A.mtx");
        if (!am) {
            throw Error("write_batch: cannot open " +
                        (dir / "A.mtx").string());
        }
        write_matrix(am, to_coo(a, i));
        std::ofstream bm(dir / "b.mtx");
        write_vector(bm, b.entry(i));
    }
}

std::pair<BatchCsr<real_type>, BatchVector<real_type>> read_batch(
    const std::string& root)
{
    namespace fs = std::filesystem;
    std::vector<Coo> matrices;
    std::vector<std::vector<real_type>> rhs;
    for (size_type i = 0;; ++i) {
        const fs::path dir = fs::path(root) / std::to_string(i);
        if (!fs::exists(dir / "A.mtx")) {
            break;
        }
        std::ifstream am(dir / "A.mtx");
        matrices.push_back(read_matrix(am));
        std::ifstream bm(dir / "b.mtx");
        if (!bm) {
            throw Error("read_batch: missing " + (dir / "b.mtx").string());
        }
        rhs.push_back(read_vector(bm));
    }
    if (matrices.empty()) {
        throw Error("read_batch: no entries under " + root);
    }
    auto batch = from_coo(matrices);
    BatchVector<real_type> b(batch.num_batch(), batch.rows());
    for (size_type i = 0; i < batch.num_batch(); ++i) {
        BSIS_ENSURE_DIMS(static_cast<index_type>(
                             rhs[static_cast<std::size_t>(i)].size()) ==
                             batch.rows(),
                         "rhs length mismatch");
        auto bv = b.entry(i);
        for (index_type k = 0; k < batch.rows(); ++k) {
            bv[k] = rhs[static_cast<std::size_t>(i)]
                       [static_cast<std::size_t>(k)];
        }
    }
    return {std::move(batch), std::move(b)};
}

}  // namespace bsis::io
