#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "io/matrix_market.hpp"
#include "matrix/stencil.hpp"
#include "util/rng.hpp"

namespace bsis::io {
namespace {

TEST(MatrixMarket, MatrixRoundTrip)
{
    auto batch = make_synthetic_batch(5, 4, StencilKind::nine_point, 2, {});
    const auto coo = to_coo(batch, 1);
    std::stringstream stream;
    write_matrix(stream, coo);
    const auto read = read_matrix(stream);
    ASSERT_EQ(read.rows, coo.rows);
    ASSERT_EQ(read.values.size(), coo.values.size());
    for (std::size_t k = 0; k < coo.values.size(); ++k) {
        EXPECT_EQ(read.row_idxs[k], coo.row_idxs[k]);
        EXPECT_EQ(read.col_idxs[k], coo.col_idxs[k]);
        EXPECT_DOUBLE_EQ(read.values[k], coo.values[k]);
    }
}

TEST(MatrixMarket, VectorRoundTrip)
{
    std::vector<real_type> v{1.5, -2.25, 1e-17, 3.0};
    std::stringstream stream;
    write_vector(stream, ConstVecView<real_type>{v.data(), 4});
    const auto read = read_vector(stream);
    ASSERT_EQ(read.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_DOUBLE_EQ(read[i], v[i]);
    }
}

TEST(MatrixMarket, ReadsSymmetricFilesExpanded)
{
    std::stringstream stream(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "% comment line\n"
        "2 2 2\n"
        "1 1 4.0\n"
        "2 1 -1.0\n");
    const auto coo = read_matrix(stream);
    EXPECT_EQ(coo.values.size(), 3u);  // off-diagonal mirrored
}

TEST(MatrixMarket, ParseErrors)
{
    {
        std::stringstream s("not a banner\n1 1 0\n");
        EXPECT_THROW(read_matrix(s), ParseError);
    }
    {
        std::stringstream s("%%MatrixMarket matrix array real general\n2 1\n1\n2\n");
        EXPECT_THROW(read_matrix(s), ParseError);  // array, not coordinate
    }
    {
        std::stringstream s(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n");
        EXPECT_THROW(read_matrix(s), ParseError);  // index out of range
    }
    {
        std::stringstream s(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n");
        EXPECT_THROW(read_matrix(s), ParseError);  // truncated
    }
    {
        std::stringstream s("%%MatrixMarket matrix array real general\n2 3\n");
        EXPECT_THROW(read_vector(s), ParseError);  // not a column
    }
}

TEST(MatrixMarket, FromCooRequiresSharedPattern)
{
    Coo a;
    a.rows = a.cols = 2;
    a.row_idxs = {0, 1};
    a.col_idxs = {0, 1};
    a.values = {1.0, 2.0};
    Coo b = a;
    b.col_idxs = {1, 1};  // different pattern
    EXPECT_THROW(from_coo({a, b}), DimensionMismatch);
    EXPECT_NO_THROW(from_coo({a, a}));
}

TEST(MatrixMarket, FromCooSortsTripletsIntoCsr)
{
    Coo a;
    a.rows = a.cols = 3;
    // Unsorted triplets.
    a.row_idxs = {2, 0, 1, 0};
    a.col_idxs = {2, 1, 1, 0};
    a.values = {3.0, 2.0, 5.0, 1.0};
    const auto batch = from_coo({a});
    EXPECT_EQ(batch.row_ptrs(), (std::vector<index_type>{0, 2, 3, 4}));
    EXPECT_EQ(batch.col_idxs(), (std::vector<index_type>{0, 1, 1, 2}));
    EXPECT_EQ(batch.values(0)[0], 1.0);
    EXPECT_EQ(batch.values(0)[1], 2.0);
    EXPECT_EQ(batch.values(0)[2], 5.0);
    EXPECT_EQ(batch.values(0)[3], 3.0);
}

TEST(BatchFolder, WriteReadRoundTrip)
{
    const std::string root =
        (std::filesystem::temp_directory_path() / "bsis_io_test").string();
    std::filesystem::remove_all(root);

    auto a = make_synthetic_batch(6, 5, StencilKind::nine_point, 3, {});
    BatchVector<real_type> b(3, a.rows());
    Rng rng(3);
    for (size_type i = 0; i < 3; ++i) {
        auto bv = b.entry(i);
        for (index_type k = 0; k < bv.len; ++k) {
            bv[k] = rng.uniform(-1.0, 1.0);
        }
    }
    write_batch(root, a, b);
    const auto [a2, b2] = read_batch(root);
    ASSERT_EQ(a2.num_batch(), 3);
    ASSERT_EQ(a2.rows(), a.rows());
    EXPECT_EQ(a2.row_ptrs(), a.row_ptrs());
    EXPECT_EQ(a2.col_idxs(), a.col_idxs());
    for (size_type i = 0; i < 3; ++i) {
        for (index_type k = 0; k < a.nnz_per_entry(); ++k) {
            ASSERT_DOUBLE_EQ(a2.values(i)[k], a.values(i)[k]);
        }
        for (index_type k = 0; k < a.rows(); ++k) {
            ASSERT_DOUBLE_EQ(b2.entry(i)[k], b.entry(i)[k]);
        }
    }
    std::filesystem::remove_all(root);
}

TEST(BatchFolder, ReadMissingRootThrows)
{
    EXPECT_THROW(read_batch("/nonexistent/bsis_dir"), Error);
}

}  // namespace
}  // namespace bsis::io
