// Per-thread shard management shared by the telemetry sinks.
//
// MetricsRegistry and TraceSession both follow the BatchLogStage pattern:
// every recording thread owns a cache-line-aligned shard it appends to
// without touching its neighbours, and snapshots merge the shards. This
// helper owns the shard lifetime and the thread -> shard lookup: the fast
// path is a one-entry thread_local cache validated by a process-wide
// generation stamp (so a destroyed owner reusing the same address never
// resurrects a stale shard), the slow path registers the thread under a
// mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace bsis::obs {

namespace detail {

inline std::uint64_t next_shard_generation()
{
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace detail

/// Owns one `Shard` per recording thread. `Shard` must be default
/// constructible; it is expected to be `alignas(64)` so neighbouring
/// threads' shards never share a cache line.
template <typename Shard>
class PerThreadShards {
public:
    PerThreadShards() : generation_(detail::next_shard_generation()) {}

    PerThreadShards(const PerThreadShards&) = delete;
    PerThreadShards& operator=(const PerThreadShards&) = delete;

    /// The calling thread's shard (created on first use). The shard's
    /// `index` is the thread's registration order, stable for the owner's
    /// lifetime -- TraceSession uses it as the trace tid.
    Shard& local()
    {
        struct Cache {
            const void* owner = nullptr;
            std::uint64_t generation = 0;
            Shard* shard = nullptr;
        };
        thread_local Cache cache;
        if (cache.owner == this && cache.generation == generation_) {
            return *cache.shard;
        }
        Shard& shard = register_thread();
        cache.owner = this;
        cache.generation = generation_;
        cache.shard = &shard;
        return shard;
    }

    /// Visits every shard registered so far. The callback must take the
    /// shard's own lock if it races with writers.
    template <typename F>
    void for_each(F&& f) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto& shard : shards_) {
            f(*shard);
        }
    }

    template <typename F>
    void for_each(F&& f)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto& shard : shards_) {
            f(*shard);
        }
    }

    std::size_t num_shards() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return shards_.size();
    }

private:
    Shard& register_thread()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto id = std::this_thread::get_id();
        auto it = by_thread_.find(id);
        if (it != by_thread_.end()) {
            return *it->second;
        }
        shards_.push_back(std::make_unique<Shard>());
        Shard& shard = *shards_.back();
        shard.index = static_cast<int>(shards_.size()) - 1;
        by_thread_.emplace(id, &shard);
        return shard;
    }

    const std::uint64_t generation_;
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::unordered_map<std::thread::id, Shard*> by_thread_;
};

}  // namespace bsis::obs
