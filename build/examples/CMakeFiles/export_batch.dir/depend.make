# Empty dependencies file for export_batch.
# This may be replaced when dependencies are built.
