// Trace-driven cache hierarchy for the GPU simulator.
//
// Used by the SIMT tracer to reproduce the L1/L2 hit rates of Table II of
// the paper: warp memory requests are first grouped into 128-byte
// transactions by a coalescing unit (as the GPU's load/store unit does),
// then looked up in a per-CU set-associative LRU L1 and a device-wide L2.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"
#include "util/types.hpp"

namespace bsis::gpusim {

/// Counters of one cache level.
struct CacheStats {
    std::int64_t accesses = 0;
    std::int64_t hits = 0;

    double hit_rate() const
    {
        return accesses == 0 ? 0.0
                             : static_cast<double>(hits) /
                                   static_cast<double>(accesses);
    }
};

/// Set-associative LRU cache over byte addresses.
class Cache {
public:
    /// `size_bytes` must be a multiple of line_bytes * ways.
    Cache(std::int64_t size_bytes, int line_bytes, int ways);

    /// Looks up (and fills) the line containing `addr`; true on hit.
    bool access(std::uint64_t addr);

    /// Drops all cached lines; statistics are kept.
    void invalidate();

    const CacheStats& stats() const { return stats_; }
    void reset_stats() { stats_ = {}; }

    int line_bytes() const { return line_bytes_; }

private:
    struct Way {
        std::uint64_t tag = ~std::uint64_t{0};
        std::int64_t last_use = -1;
    };

    int line_bytes_;
    int ways_;
    std::int64_t num_sets_;
    std::int64_t tick_ = 0;
    std::vector<Way> sets_;  ///< num_sets x ways
    CacheStats stats_;
};

/// Groups the byte addresses touched by one warp instruction into unique
/// aligned segments of `segment_bytes` (the GPU coalescing granularity).
/// Returns the segment base addresses via `out` (cleared first).
void coalesce(const std::vector<std::uint64_t>& lane_addrs,
              int bytes_per_lane, int segment_bytes,
              std::vector<std::uint64_t>& out);

/// A per-CU L1 in front of a shared L2; misses fall through to DRAM (which
/// is only counted).
class MemoryHierarchy {
public:
    MemoryHierarchy(std::int64_t l1_bytes, std::int64_t l2_bytes,
                    int line_bytes = 128);

    /// Access one coalesced transaction.
    void access(std::uint64_t addr);

    /// New thread block on this CU: L1 keeps its content (GPU L1s are not
    /// flushed between blocks), but callers may invalidate to model a
    /// block landing on a different CU.
    void invalidate_l1() { l1_.invalidate(); }

    const CacheStats& l1_stats() const { return l1_.stats(); }
    const CacheStats& l2_stats() const { return l2_.stats(); }
    std::int64_t dram_transactions() const { return dram_transactions_; }
    int line_bytes() const { return l1_.line_bytes(); }

private:
    Cache l1_;
    Cache l2_;
    std::int64_t dram_transactions_ = 0;
};

}  // namespace bsis::gpusim
