// Eigenvalues of general real (nonsymmetric) matrices.
//
// Used to reproduce Fig. 2 of the paper: the spectra of the ion and
// electron collision matrices (ion eigenvalues clustered around 1, electron
// eigenvalues spread over a wider range of real parts). Pipeline: balancing
// -> Hessenberg reduction by stabilized elementary transformations ->
// Francis double-shift QR (the classical EISPACK balanc/elmhes/hqr
// sequence).
#pragma once

#include <vector>

#include "matrix/batch_csr.hpp"
#include "matrix/batch_dense.hpp"
#include "util/types.hpp"

namespace bsis::lapack {

/// All eigenvalues of a dense real square matrix, sorted by ascending real
/// part (ties by imaginary part). Destroys `a`. Throws NumericalBreakdown
/// if the QR iteration fails to converge.
std::vector<complex_type> eigenvalues(DenseView<real_type> a);

/// Convenience overload: densifies one entry of a sparse batch first.
std::vector<complex_type> eigenvalues(const BatchCsr<real_type>& batch,
                                      size_type entry);

/// Summary statistics of a spectrum, matching how Fig. 2 is read in the
/// paper text ("clustered around 1" vs "greater range of real parts").
struct SpectrumSummary {
    double min_real = 0.0;
    double max_real = 0.0;
    double max_abs_imag = 0.0;
    /// max|lambda| / min|lambda|: spectral spread (a condition-number proxy
    /// for these well-behaved matrices).
    double spread = 0.0;
    /// Fraction of eigenvalues with |lambda - 1| < 0.1.
    double clustered_fraction = 0.0;
};

SpectrumSummary summarize_spectrum(const std::vector<complex_type>& eigs);

}  // namespace bsis::lapack
