// MatrixMarket I/O and the paper's batch folder layout.
//
// The paper's reproducibility appendix distributes the XGC matrices as
// MatrixMarket files in a folder layout
//     <class>/<index>/A.mtx  and  <class>/<index>/b.mtx
// (matrix class directory, one numbered subfolder per batch entry). This
// module reads/writes single sparse matrices and dense vectors in
// MatrixMarket coordinate/array format and whole batches in that layout.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "blas/batch_vector.hpp"
#include "matrix/batch_csr.hpp"
#include "util/types.hpp"

namespace bsis::io {

/// One sparse matrix in triplet form (always `general real coordinate`).
struct Coo {
    index_type rows = 0;
    index_type cols = 0;
    std::vector<index_type> row_idxs;
    std::vector<index_type> col_idxs;
    std::vector<real_type> values;
};

/// Writes a sparse matrix in MatrixMarket coordinate format.
void write_matrix(std::ostream& os, const Coo& coo);

/// Reads a MatrixMarket coordinate file (general real; symmetric files are
/// expanded). Throws ParseError on malformed input.
Coo read_matrix(std::istream& is);

/// Writes a dense vector in MatrixMarket array format.
void write_vector(std::ostream& os, ConstVecView<real_type> v);

/// Reads a dense vector in MatrixMarket array format.
std::vector<real_type> read_vector(std::istream& is);

/// One entry of a BatchCsr as a Coo.
Coo to_coo(const BatchCsr<real_type>& batch, size_type entry);

/// Builds a single-pattern BatchCsr from per-entry Coo triplets; all
/// entries must share the sparsity pattern (the batched formats' storage
/// assumption). Throws on pattern mismatch.
BatchCsr<real_type> from_coo(const std::vector<Coo>& entries);

/// Writes a whole batch in the paper's folder layout under `root`
/// (creates `root/<i>/A.mtx` and `root/<i>/b.mtx`).
void write_batch(const std::string& root, const BatchCsr<real_type>& a,
                 const BatchVector<real_type>& b);

/// Reads a batch written by write_batch (or the paper's Zenodo layout).
std::pair<BatchCsr<real_type>, BatchVector<real_type>> read_batch(
    const std::string& root);

}  // namespace bsis::io
