#include "obs/monitor.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "obs/events.hpp"

namespace bsis::obs {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Alert rules: grammar and defaults
// ---------------------------------------------------------------------

const char* alert_phase_name(AlertPhase phase)
{
    switch (phase) {
    case AlertPhase::ok:
        return "ok";
    case AlertPhase::pending:
        return "pending";
    case AlertPhase::firing:
        return "firing";
    }
    return "ok";
}

namespace {

std::string trim(const std::string& s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
        ++b;
    }
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
        --e;
    }
    return s.substr(b, e - b);
}

bool fail(std::string* error, const std::string& message)
{
    if (error != nullptr) {
        *error = message;
    }
    return false;
}

/// Compares `value` against the rule's threshold.
bool compare(AlertOp op, double value, double threshold)
{
    switch (op) {
    case AlertOp::gt:
        return value > threshold;
    case AlertOp::ge:
        return value >= threshold;
    case AlertOp::lt:
        return value < threshold;
    case AlertOp::le:
        return value <= threshold;
    }
    return false;
}

const char* op_name(AlertOp op)
{
    switch (op) {
    case AlertOp::gt:
        return ">";
    case AlertOp::ge:
        return ">=";
    case AlertOp::lt:
        return "<";
    case AlertOp::le:
        return "<=";
    }
    return ">";
}

/// Prefix-wildcard match: a metric pattern ending in `*` matches every
/// name with that prefix; otherwise exact.
bool metric_matches(const std::string& pattern, const std::string& name)
{
    if (!pattern.empty() && pattern.back() == '*') {
        return name.compare(0, pattern.size() - 1, pattern, 0,
                            pattern.size() - 1) == 0;
    }
    return name == pattern;
}

}  // namespace

bool parse_alert_rule(const std::string& line, AlertRule& out,
                      std::string* error)
{
    const auto colon = line.find(':');
    if (colon == std::string::npos) {
        return fail(error, "missing ':' after the rule name");
    }
    AlertRule rule;
    rule.name = trim(line.substr(0, colon));
    if (rule.name.empty()) {
        return fail(error, "empty rule name");
    }
    std::string rest = trim(line.substr(colon + 1));

    const auto open = rest.find('(');
    const auto close = rest.find(')', open == std::string::npos ? 0 : open);
    if (open == std::string::npos || close == std::string::npos) {
        return fail(error, "expected <func>(<metric>)");
    }
    const std::string func = trim(rest.substr(0, open));
    rule.metric = trim(rest.substr(open + 1, close - open - 1));
    if (rule.metric.empty()) {
        return fail(error, "empty metric name");
    }
    if (func == "value") {
        rule.func = AlertFunc::value;
    } else if (func == "rate") {
        rule.func = AlertFunc::rate;
    } else if (func == "absent") {
        rule.func = AlertFunc::absent;
    } else {
        return fail(error, "unknown function '" + func +
                               "' (value | rate | absent)");
    }
    rest = trim(rest.substr(close + 1));

    if (rule.func != AlertFunc::absent) {
        // <op> <threshold>
        std::istringstream is(rest);
        std::string op;
        if (!(is >> op)) {
            return fail(error, "expected comparison operator");
        }
        if (op == ">") {
            rule.op = AlertOp::gt;
        } else if (op == ">=") {
            rule.op = AlertOp::ge;
        } else if (op == "<") {
            rule.op = AlertOp::lt;
        } else if (op == "<=") {
            rule.op = AlertOp::le;
        } else {
            return fail(error, "unknown operator '" + op + "'");
        }
        if (!(is >> rule.threshold)) {
            return fail(error, "expected numeric threshold");
        }
        std::string tail;
        std::getline(is, tail);
        rest = trim(tail);
    }

    if (!rest.empty()) {
        // for <seconds>[s]
        std::istringstream is(rest);
        std::string kw;
        std::string dur;
        if (!(is >> kw >> dur) || kw != "for") {
            return fail(error, "expected 'for <seconds>s'");
        }
        if (!dur.empty() && dur.back() == 's') {
            dur.pop_back();
        }
        char* end = nullptr;
        rule.for_seconds = std::strtod(dur.c_str(), &end);
        if (end == dur.c_str() || *end != '\0' || rule.for_seconds < 0) {
            return fail(error, "bad duration '" + dur + "'");
        }
        std::string extra;
        if (is >> extra) {
            return fail(error, "trailing garbage '" + extra + "'");
        }
    } else if (rule.func == AlertFunc::absent) {
        return fail(error, "absent rules need 'for <seconds>s'");
    }
    out = std::move(rule);
    return true;
}

bool load_alert_rules(const std::string& path, std::vector<AlertRule>& out,
                      std::string* error)
{
    std::ifstream in(path);
    if (!in) {
        return fail(error, "cannot open rule file " + path);
    }
    std::string line;
    int lineno = 0;
    std::vector<AlertRule> rules;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos) {
            line = line.substr(0, hash);
        }
        line = trim(line);
        if (line.empty()) {
            continue;
        }
        AlertRule rule;
        std::string why;
        if (!parse_alert_rule(line, rule, &why)) {
            return fail(error, path + ":" + std::to_string(lineno) + ": " +
                                   why);
        }
        rules.push_back(std::move(rule));
    }
    out = std::move(rules);
    return true;
}

std::vector<AlertRule> default_alert_rules()
{
    // The for-durations assume the default 250 ms tick: two consecutive
    // bad ticks fire, one never does.
    std::vector<AlertRule> rules;
    const auto rate_rule = [](const char* name, const char* metric) {
        AlertRule r;
        r.name = name;
        r.func = AlertFunc::rate;
        r.metric = metric;
        r.op = AlertOp::gt;
        r.threshold = 0;
        r.for_seconds = 0.5;
        return r;
    };
    rules.push_back(rate_rule("solve_failures", "solve.fail.*"));
    rules.push_back(rate_rule("gpusim_failures", "gpusim.fail.*"));
    rules.push_back(rate_rule("drift_alarms", "obs.drift.alarms"));
    AlertRule drops;
    drops.name = "trace_drops";
    drops.func = AlertFunc::value;
    drops.metric = "obs.trace.dropped";
    drops.op = AlertOp::gt;
    drops.threshold = 0;
    drops.for_seconds = 0;
    rules.push_back(drops);
    return rules;
}

// ---------------------------------------------------------------------
// Prometheus text format
// ---------------------------------------------------------------------

std::string prometheus_name(const std::string& metric)
{
    std::string out = "bsis_";
    out.reserve(metric.size() + 5);
    for (const char c : metric) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    return out;
}

namespace {

/// HELP text / label-value escaping of the exposition format.
void prom_escape(std::ostream& os, const std::string& s, bool label_value)
{
    for (const char c : s) {
        if (c == '\\') {
            os << "\\\\";
        } else if (c == '\n') {
            os << "\\n";
        } else if (label_value && c == '"') {
            os << "\\\"";
        } else {
            os << c;
        }
    }
}

void prom_number(std::ostream& os, double v)
{
    if (std::isnan(v)) {
        os << "NaN";
    } else if (std::isinf(v)) {
        os << (v > 0 ? "+Inf" : "-Inf");
    } else {
        os << v;
    }
}

}  // namespace

const PromSample* PromDocument::find(const std::string& name,
                                     const std::string& label_key,
                                     const std::string& label_value) const
{
    for (const auto& s : samples) {
        if (s.name != name) {
            continue;
        }
        if (label_key.empty()) {
            return &s;
        }
        const auto it = s.labels.find(label_key);
        if (it != s.labels.end() && it->second == label_value) {
            return &s;
        }
    }
    return nullptr;
}

double PromDocument::value(const std::string& name, double fallback) const
{
    const auto* s = find(name);
    return s == nullptr ? fallback : s->value;
}

bool parse_prometheus_text(const std::string& text, PromDocument& out)
{
    PromDocument doc;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) {
            continue;
        }
        if (line[0] == '#') {
            std::istringstream ls(line);
            std::string hash;
            std::string kind;
            std::string name;
            ls >> hash >> kind >> name;
            if (kind == "HELP" || kind == "TYPE") {
                std::string rest;
                std::getline(ls, rest);
                (kind == "HELP" ? doc.help : doc.type)[name] = trim(rest);
            }
            continue;
        }
        PromSample sample;
        std::size_t pos = 0;
        while (pos < line.size() && line[pos] != '{' && line[pos] != ' ' &&
               line[pos] != '\t') {
            ++pos;
        }
        sample.name = line.substr(0, pos);
        if (sample.name.empty()) {
            return false;
        }
        if (pos < line.size() && line[pos] == '{') {
            ++pos;
            while (pos < line.size() && line[pos] != '}') {
                std::size_t eq = line.find('=', pos);
                if (eq == std::string::npos || eq + 1 >= line.size() ||
                    line[eq + 1] != '"') {
                    return false;
                }
                const std::string key = trim(line.substr(pos, eq - pos));
                std::size_t vpos = eq + 2;
                std::string value;
                while (vpos < line.size() && line[vpos] != '"') {
                    if (line[vpos] == '\\' && vpos + 1 < line.size()) {
                        ++vpos;
                        if (line[vpos] == 'n') {
                            value += '\n';
                        } else {
                            value += line[vpos];
                        }
                    } else {
                        value += line[vpos];
                    }
                    ++vpos;
                }
                if (vpos >= line.size()) {
                    return false;
                }
                sample.labels[key] = value;
                pos = vpos + 1;
                if (pos < line.size() && line[pos] == ',') {
                    ++pos;
                }
            }
            if (pos >= line.size()) {
                return false;
            }
            ++pos;  // '}'
        }
        const std::string value_text = trim(line.substr(pos));
        if (value_text == "NaN") {
            sample.value = std::nan("");
        } else if (value_text == "+Inf") {
            sample.value = std::numeric_limits<double>::infinity();
        } else if (value_text == "-Inf") {
            sample.value = -std::numeric_limits<double>::infinity();
        } else {
            char* end = nullptr;
            sample.value = std::strtod(value_text.c_str(), &end);
            if (end == value_text.c_str() || *end != '\0') {
                return false;
            }
        }
        doc.samples.push_back(std::move(sample));
    }
    out = std::move(doc);
    return true;
}

bool load_prometheus_file(const std::string& path, PromDocument& out)
{
    std::ifstream in(path);
    if (!in) {
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse_prometheus_text(buf.str(), out);
}

// ---------------------------------------------------------------------
// Monitor
// ---------------------------------------------------------------------

Monitor::Monitor(MetricsRegistry& registry, MonitorConfig config)
    : registry_(registry), config_(std::move(config))
{
    if (config_.rules.empty() && config_.use_default_rules) {
        config_.rules = default_alert_rules();
    }
    alerts_.reserve(config_.rules.size());
    for (const auto& rule : config_.rules) {
        AlertStatus status;
        status.rule = rule;
        alerts_.push_back(std::move(status));
    }
    // Register the alert counters up front so dashboards see a stable
    // metric set even before the first transition.
    registry_.counter("obs.alerts.fired");
    registry_.counter("obs.alerts.resolved");
    registry_.gauge("obs.alerts.firing");
}

Monitor::~Monitor() { stop(); }

// --- sampling ---------------------------------------------------------

void Monitor::sample_now() { sample_at(unix_seconds()); }

void Monitor::sample_at(double now_seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    sample_locked(now_seconds);
}

void Monitor::sample_locked(double now)
{
    last_snap_ = registry_.snapshot();
    const MetricsSnapshot& snap = last_snap_;
    const double dt = have_last_tick_ ? std::max(0.0, now - last_tick_time_)
                                      : 0.0;

    for (const auto& c : snap.counters) {
        auto it = counters_.find(c.name);
        if (it == counters_.end()) {
            it = counters_
                     .emplace(c.name,
                              CounterSeries{
                                  TimeSeriesRing(config_.ring_capacity), 0,
                                  false, 0})
                     .first;
        }
        auto& series = it->second;
        const double total = static_cast<double>(c.value);
        if (!series.primed) {
            // First sight establishes the baseline; a rate needs two
            // ticks. reset_values() shows up as a negative delta and
            // re-primes instead of emitting a bogus negative rate.
            series.last_total = total;
            series.primed = true;
            series.last_rate = 0;
            continue;
        }
        const double delta = total - series.last_total;
        series.last_total = total;
        if (delta < 0) {
            series.last_rate = 0;
            continue;
        }
        series.last_rate = dt > 0 ? delta / dt : 0.0;
        series.rate.push(now, series.last_rate);
    }
    for (const auto& g : snap.gauges) {
        if (!g.set) {
            continue;
        }
        auto it = gauges_.find(g.name);
        if (it == gauges_.end()) {
            it = gauges_
                     .emplace(g.name, TimeSeriesRing(config_.ring_capacity))
                     .first;
        }
        it->second.push(now, g.value);
    }
    for (const auto& h : snap.histograms) {
        if (h.summary.count == 0) {
            continue;
        }
        auto it = histograms_.find(h.name);
        if (it == histograms_.end()) {
            it = histograms_
                     .emplace(h.name,
                              HistSeries{
                                  TimeSeriesRing(config_.ring_capacity),
                                  TimeSeriesRing(config_.ring_capacity)})
                     .first;
        }
        it->second.p50.push(now, h.summary.p50);
        it->second.p95.push(now, h.summary.p95);
    }

    evaluate_alerts_locked(snap, now);
    ++ticks_;
    last_tick_time_ = now;
    have_last_tick_ = true;

    // Render the exposition eagerly only when something consumes it every
    // tick (promfile or scrape endpoint). Otherwise just mark it stale:
    // prometheus_text() re-renders on demand, so a bare `--monitor` run
    // does not pay string building on every tick.
    if (!config_.prom_path.empty() || config_.http) {
        prom_text_ = render_prometheus_locked(snap, now);
        prom_stale_ = false;
        write_prom_file_locked();
    } else {
        prom_stale_ = true;
    }
}

// --- alert evaluation -------------------------------------------------

double Monitor::eval_rule_locked(const AlertRule& rule,
                                 const MetricsSnapshot& snap,
                                 bool& present) const
{
    present = false;
    double value = 0;
    if (rule.func == AlertFunc::rate) {
        for (const auto& c : snap.counters) {
            if (metric_matches(rule.metric, c.name)) {
                present = true;
                const auto it = counters_.find(c.name);
                if (it != counters_.end() && it->second.primed) {
                    value += it->second.last_rate;
                }
            }
        }
        return value;
    }
    // value / absent: counters by total, gauges by last value, histograms
    // by p95.
    for (const auto& c : snap.counters) {
        if (metric_matches(rule.metric, c.name)) {
            present = true;
            value += static_cast<double>(c.value);
        }
    }
    for (const auto& g : snap.gauges) {
        if (g.set && metric_matches(rule.metric, g.name)) {
            present = true;
            value += g.value;
        }
    }
    for (const auto& h : snap.histograms) {
        if (h.summary.count > 0 && metric_matches(rule.metric, h.name)) {
            present = true;
            value += h.summary.p95;
        }
    }
    return value;
}

void Monitor::evaluate_alerts_locked(const MetricsSnapshot& snap,
                                     double now)
{
    int firing_count = 0;
    for (auto& alert : alerts_) {
        const auto& rule = alert.rule;
        bool present = false;
        const double value = eval_rule_locked(rule, snap, present);
        const bool cond = rule.func == AlertFunc::absent
                              ? !present
                              : compare(rule.op, value, rule.threshold);
        alert.last_value = value;
        alert.condition = cond;

        const auto fire = [&] {
            alert.phase = AlertPhase::firing;
            alert.since = now;
            ++alert.fired;
            registry_.add_named("obs.alerts.fired");
            if (events_enabled()) {
                events().emit("alert.firing",
                              {field("alert", rule.name),
                               field("metric", rule.metric),
                               field("value", value),
                               field("threshold", rule.threshold)});
            }
        };
        const auto resolve = [&] {
            alert.phase = AlertPhase::ok;
            alert.since = now;
            ++alert.resolved;
            registry_.add_named("obs.alerts.resolved");
            if (events_enabled()) {
                events().emit("alert.resolved",
                              {field("alert", rule.name),
                               field("metric", rule.metric),
                               field("value", value)});
            }
        };

        switch (alert.phase) {
        case AlertPhase::ok:
            if (cond) {
                if (rule.for_seconds <= 0) {
                    fire();
                } else {
                    alert.phase = AlertPhase::pending;
                    alert.since = now;
                }
            }
            break;
        case AlertPhase::pending:
            if (!cond) {
                alert.phase = AlertPhase::ok;
                alert.since = now;
            } else if (now - alert.since >= rule.for_seconds) {
                fire();
            }
            break;
        case AlertPhase::firing:
            if (cond) {
                alert.clear_since = -1;
            } else {
                if (alert.clear_since < 0) {
                    alert.clear_since = now;
                }
                if (rule.for_seconds <= 0 ||
                    now - alert.clear_since >= rule.for_seconds) {
                    alert.clear_since = -1;
                    resolve();
                }
            }
            break;
        }
        firing_count += alert.phase == AlertPhase::firing ? 1 : 0;
    }
    registry_.set_named("obs.alerts.firing",
                        static_cast<double>(firing_count));
}

// --- exposition -------------------------------------------------------

std::string Monitor::render_prometheus_locked(const MetricsSnapshot& snap,
                                              double now) const
{
    std::ostringstream os;
    os.precision(12);

    const auto header = [&](const std::string& name, const char* type,
                            const std::string& help) {
        os << "# HELP " << name << " ";
        prom_escape(os, help, false);
        os << "\n# TYPE " << name << " " << type << "\n";
    };

    // Monitor meta first so consumers can detect staleness.
    header("bsis_monitor_ticks", "counter", "sampler ticks so far");
    os << "bsis_monitor_ticks " << ticks_ << "\n";
    header("bsis_monitor_tick_seconds", "gauge",
           "configured sampler period");
    os << "bsis_monitor_tick_seconds " << config_.tick_seconds << "\n";
    header("bsis_monitor_unix_time", "gauge",
           "unix time of this exposition");
    os << "bsis_monitor_unix_time " << now << "\n";

    for (const auto& c : snap.counters) {
        const std::string name = prometheus_name(c.name);
        header(name, "counter", c.name);
        os << name << " " << c.value << "\n";
        const auto it = counters_.find(c.name);
        if (it != counters_.end() && it->second.rate.size() > 0) {
            header(name + "_per_sec", "gauge",
                   "per-second rate of " + c.name + " over the last tick");
            os << name << "_per_sec ";
            prom_number(os, it->second.last_rate);
            os << "\n";
        }
    }
    for (const auto& g : snap.gauges) {
        if (!g.set) {
            continue;
        }
        const std::string name = prometheus_name(g.name);
        header(name, "gauge", g.name);
        os << name << " ";
        prom_number(os, g.value);
        os << "\n";
    }
    for (const auto& h : snap.histograms) {
        if (h.summary.count == 0) {
            continue;
        }
        const std::string name = prometheus_name(h.name);
        header(name, "summary", h.name);
        os << name << "{quantile=\"0.5\"} ";
        prom_number(os, h.summary.p50);
        os << "\n" << name << "{quantile=\"0.95\"} ";
        prom_number(os, h.summary.p95);
        os << "\n" << name << "_sum ";
        prom_number(os, h.summary.sum);
        os << "\n" << name << "_count " << h.summary.count << "\n";
        header(name + "_max", "gauge", "max of " + h.name);
        os << name << "_max ";
        prom_number(os, h.summary.max);
        os << "\n";
    }

    header("bsis_alert_firing", "gauge",
           "1 while the named alert rule is firing");
    int firing_count = 0;
    for (const auto& alert : alerts_) {
        os << "bsis_alert_firing{alert=\"";
        prom_escape(os, alert.rule.name, true);
        os << "\"} " << (alert.phase == AlertPhase::firing ? 1 : 0)
           << "\n";
        firing_count += alert.phase == AlertPhase::firing ? 1 : 0;
    }
    header("bsis_alerts_firing", "gauge", "alert rules currently firing");
    os << "bsis_alerts_firing " << firing_count << "\n";
    return os.str();
}

void Monitor::write_prom_file_locked() const
{
    if (config_.prom_path.empty()) {
        return;
    }
    // Atomic publish: scrape-by-file consumers (obs_top) must never read
    // a half-written exposition.
    const std::string tmp = config_.prom_path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out || !(out << prom_text_)) {
            return;
        }
    }
    std::error_code ec;
    fs::rename(tmp, config_.prom_path, ec);
}

// --- accessors --------------------------------------------------------

std::int64_t Monitor::ticks() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ticks_;
}

std::string Monitor::prometheus_text() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (prom_stale_) {
        prom_text_ = render_prometheus_locked(last_snap_, last_tick_time_);
        prom_stale_ = false;
    }
    return prom_text_;
}

std::vector<AlertStatus> Monitor::alerts() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return alerts_;
}

int Monitor::firing() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    int count = 0;
    for (const auto& alert : alerts_) {
        count += alert.phase == AlertPhase::firing ? 1 : 0;
    }
    return count;
}

std::vector<SeriesPoint> Monitor::counter_rate(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? std::vector<SeriesPoint>{}
                                 : it->second.rate.points();
}

std::vector<SeriesPoint> Monitor::gauge_values(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? std::vector<SeriesPoint>{}
                               : it->second.points();
}

std::vector<SeriesPoint> Monitor::histogram_quantile(const std::string& name,
                                                     double q) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        return {};
    }
    return q <= 0.5 ? it->second.p50.points() : it->second.p95.points();
}

int Monitor::http_port() const
{
    std::lock_guard<std::mutex> lock(stop_mutex_);
    return bound_http_port_;
}

bool Monitor::running() const
{
    std::lock_guard<std::mutex> lock(stop_mutex_);
    return running_;
}

// --- sampler / HTTP threads ------------------------------------------

void Monitor::start()
{
    {
        std::lock_guard<std::mutex> lock(stop_mutex_);
        if (running_) {
            return;
        }
        running_ = true;
        stop_requested_ = false;
    }
    if (config_.http && open_http_socket()) {
        http_thread_ = std::thread([this] { run_http(); });
    }
    sampler_ = std::thread([this] { run_sampler(); });
}

void Monitor::stop()
{
    {
        std::lock_guard<std::mutex> lock(stop_mutex_);
        if (!running_) {
            return;
        }
        stop_requested_ = true;
    }
    stop_cv_.notify_all();
    if (sampler_.joinable()) {
        sampler_.join();
    }
#ifndef _WIN32
    int fd = -1;
    {
        std::lock_guard<std::mutex> lock(stop_mutex_);
        fd = http_fd_;
        http_fd_ = -1;
        bound_http_port_ = 0;
    }
    if (fd >= 0) {
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
#endif
    if (http_thread_.joinable()) {
        http_thread_.join();
    }
    // One final sample so a short run still publishes its tail (and the
    // promfile reflects the run's end state).
    sample_now();
    std::lock_guard<std::mutex> lock(stop_mutex_);
    running_ = false;
}

void Monitor::run_sampler()
{
    const auto tick = std::chrono::duration<double>(
        std::max(0.001, config_.tick_seconds));
    std::unique_lock<std::mutex> lock(stop_mutex_);
    while (!stop_requested_) {
        if (stop_cv_.wait_for(lock, tick,
                              [this] { return stop_requested_; })) {
            break;
        }
        lock.unlock();
        sample_now();
        lock.lock();
    }
}

bool Monitor::open_http_socket()
{
#ifdef _WIN32
    return false;
#else
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        return false;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port =
        htons(static_cast<std::uint16_t>(std::max(0, config_.http_port)));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
        ::listen(fd, 8) < 0) {
        ::close(fd);
        return false;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    std::lock_guard<std::mutex> lock(stop_mutex_);
    http_fd_ = fd;
    bound_http_port_ = static_cast<int>(ntohs(addr.sin_port));
    return true;
#endif
}

void Monitor::run_http()
{
#ifndef _WIN32
    for (;;) {
        int listen_fd = -1;
        {
            std::lock_guard<std::mutex> lock(stop_mutex_);
            listen_fd = http_fd_;
        }
        if (listen_fd < 0) {
            return;
        }
        const int client = ::accept(listen_fd, nullptr, nullptr);
        if (client < 0) {
            // stop() shut the listen socket down.
            return;
        }
        char request[1024];
        (void)::read(client, request, sizeof(request));  // drained, unused
        const std::string body = prometheus_text();
        std::ostringstream response;
        response << "HTTP/1.1 200 OK\r\n"
                 << "Content-Type: text/plain; version=0.0.4\r\n"
                 << "Content-Length: " << body.size() << "\r\n"
                 << "Connection: close\r\n\r\n"
                 << body;
        const std::string text = response.str();
        std::size_t off = 0;
        while (off < text.size()) {
            const auto n =
                ::write(client, text.data() + off, text.size() - off);
            if (n <= 0) {
                break;
            }
            off += static_cast<std::size_t>(n);
        }
        ::close(client);
    }
#endif
}

}  // namespace bsis::obs
