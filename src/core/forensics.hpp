// Solve-forensics glue between core and the obs flight recorder.
//
// obs sits below core in the library graph, so the FlightRecorder's bundle
// sidecar carries plain strings and numbers; this header owns the
// conversions -- canonical names for the runtime composition enums, matrix
// view -> COO extraction, and SolverSettings <-> FailureBundleMeta mapping
// used by the capture loop in the batch driver and by the replay tool.
#pragma once

#include <string>
#include <vector>

#include "core/failure.hpp"
#include "core/logger.hpp"
#include "core/solver.hpp"
#include "io/matrix_market.hpp"
#include "obs/convergence.hpp"
#include "obs/flight_recorder.hpp"
#include "util/types.hpp"

namespace bsis {

inline const char* solver_name(SolverType s)
{
    switch (s) {
    case SolverType::bicgstab:
        return "bicgstab";
    case SolverType::bicg:
        return "bicg";
    case SolverType::cgs:
        return "cgs";
    case SolverType::cg:
        return "cg";
    case SolverType::gmres:
        return "gmres";
    case SolverType::richardson:
        return "richardson";
    case SolverType::chebyshev:
        return "chebyshev";
    }
    return "unknown";
}

inline bool solver_from_name(const std::string& name, SolverType& out)
{
    for (const auto s :
         {SolverType::bicgstab, SolverType::bicg, SolverType::cgs,
          SolverType::cg, SolverType::gmres, SolverType::richardson,
          SolverType::chebyshev}) {
        if (name == solver_name(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

inline const char* precond_name(PrecondType p)
{
    switch (p) {
    case PrecondType::identity:
        return "identity";
    case PrecondType::jacobi:
        return "jacobi";
    case PrecondType::block_jacobi:
        return "block_jacobi";
    }
    return "unknown";
}

inline bool precond_from_name(const std::string& name, PrecondType& out)
{
    for (const auto p : {PrecondType::identity, PrecondType::jacobi,
                         PrecondType::block_jacobi}) {
        if (name == precond_name(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

inline const char* stop_name(StopType s)
{
    switch (s) {
    case StopType::abs_residual:
        return "absolute";
    case StopType::rel_residual:
        return "relative";
    }
    return "unknown";
}

inline bool stop_from_name(const std::string& name, StopType& out)
{
    for (const auto s : {StopType::abs_residual, StopType::rel_residual}) {
        if (name == stop_name(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

/// One batch entry of each shared-pattern format as a COO triplet list
/// (padding slots skipped), for the flight recorder's A.mtx.
inline io::Coo to_coo(const CsrView<real_type>& a)
{
    io::Coo coo;
    coo.rows = a.rows;
    coo.cols = a.rows;
    for (index_type r = 0; r < a.rows; ++r) {
        for (index_type k = a.row_ptrs[r]; k < a.row_ptrs[r + 1]; ++k) {
            coo.row_idxs.push_back(r);
            coo.col_idxs.push_back(a.col_idxs[k]);
            coo.values.push_back(a.values[k]);
        }
    }
    return coo;
}

inline io::Coo to_coo(const EllView<real_type>& a)
{
    io::Coo coo;
    coo.rows = a.rows;
    coo.cols = a.rows;
    for (index_type r = 0; r < a.rows; ++r) {
        for (index_type k = 0; k < a.nnz_per_row; ++k) {
            const index_type c = a.col_idxs[a.at(r, k)];
            if (c != ell_padding) {
                coo.row_idxs.push_back(r);
                coo.col_idxs.push_back(c);
                coo.values.push_back(a.values[a.at(r, k)]);
            }
        }
    }
    return coo;
}

inline io::Coo to_coo(const SellpView<real_type>& a)
{
    io::Coo coo;
    coo.rows = a.rows;
    coo.cols = a.rows;
    for (index_type r = 0; r < a.rows; ++r) {
        const index_type slice = r / a.slice_size;
        const index_type width =
            a.slice_sets[slice + 1] - a.slice_sets[slice];
        for (index_type k = 0; k < width; ++k) {
            const index_type c = a.col_idxs[a.at(r, k)];
            if (c != ell_padding) {
                coo.row_idxs.push_back(r);
                coo.col_idxs.push_back(c);
                coo.values.push_back(a.values[a.at(r, k)]);
            }
        }
    }
    return coo;
}

inline io::Coo to_coo(const ConstDenseView<real_type>& a)
{
    io::Coo coo;
    coo.rows = a.rows;
    coo.cols = a.cols;
    for (index_type r = 0; r < a.rows; ++r) {
        for (index_type c = 0; c < a.cols; ++c) {
            const real_type v = a(r, c);
            if (v != real_type{0}) {
                coo.row_idxs.push_back(r);
                coo.col_idxs.push_back(c);
                coo.values.push_back(v);
            }
        }
    }
    return coo;
}

/// Builds the sidecar for one failed system: settings snapshot plus the
/// recorded outcome and (when available) residual trajectory.
inline obs::FailureBundleMeta make_bundle_meta(
    const SolverSettings& settings, size_type system, const BatchLog& log,
    const obs::ConvergenceHistory* history)
{
    obs::FailureBundleMeta meta;
    meta.failure = failure_class_name(log.failure(system));
    meta.solver = solver_name(settings.solver);
    meta.precond = precond_name(settings.precond);
    meta.stop = stop_name(settings.stop);
    meta.tolerance = settings.tolerance;
    meta.max_iterations = settings.max_iterations;
    meta.gmres_restart = settings.gmres_restart;
    meta.block_jacobi_size = settings.block_jacobi_size;
    meta.richardson_omega = settings.richardson_omega;
    meta.used_initial_guess = settings.use_initial_guess;
    meta.fused_kernels = settings.fused_kernels;
    meta.pipelined = settings.pipelined;
    meta.lockstep_width = settings.lockstep_width;
    meta.system_index = static_cast<std::int64_t>(system);
    meta.iterations = log.iterations(system);
    meta.residual_norm = log.residual_norm(system);
    if (history != nullptr && history->active()) {
        for (const auto& pt : history->points(system)) {
            meta.history_iterations.push_back(pt.iteration);
            meta.history_residuals.push_back(pt.residual);
        }
    }
    return meta;
}

/// Restores the captured composition into settings for a replay (execution
/// knobs like lockstep_width are left for the replayer to choose).
inline bool apply_bundle_meta(const obs::FailureBundleMeta& meta,
                              SolverSettings& settings)
{
    if (!solver_from_name(meta.solver, settings.solver) ||
        !precond_from_name(meta.precond, settings.precond) ||
        !stop_from_name(meta.stop, settings.stop)) {
        return false;
    }
    settings.tolerance = meta.tolerance;
    settings.max_iterations = meta.max_iterations;
    settings.gmres_restart = meta.gmres_restart;
    settings.block_jacobi_size = meta.block_jacobi_size;
    settings.richardson_omega = meta.richardson_omega;
    settings.use_initial_guess = meta.used_initial_guess;
    settings.fused_kernels = meta.fused_kernels;
    settings.pipelined = meta.pipelined;
    return true;
}

}  // namespace bsis
