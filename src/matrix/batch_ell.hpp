// BatchEll: batch of sparse matrices sharing one ELLPACK sparsity pattern.
//
// Rows are padded to a uniform number of nonzeros (`nnz_per_row`), removing
// the row-pointer array. Column indices and values are stored COLUMN-MAJOR
// over (row, slot): element (r, k) lives at k * rows + r, so consecutive
// GPU threads (one thread per row, Section IV-E) read consecutive memory --
// fully coalesced. Padding slots carry column index -1 and value 0.
//
// Storage cost (paper's formula):
//   num_matrices * (nnz_per_row * rows) * sizeof(value)
//   + nnz_per_row * rows * sizeof(index)
#pragma once

#include <vector>

#include "blas/batch_vector.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace bsis {

/// Sentinel column index marking an ELL padding slot.
inline constexpr index_type ell_padding = -1;

/// One entry of a BatchEll: shared column-major pattern + this entry's values.
template <typename T>
struct EllView {
    index_type rows = 0;
    index_type nnz_per_row = 0;
    const index_type* col_idxs = nullptr;  ///< column-major (slot-major)
    const T* values = nullptr;             ///< column-major (slot-major)

    index_type stored_per_entry() const { return rows * nnz_per_row; }

    /// Linear index of (row r, slot k) in the column-major layout.
    std::size_t at(index_type r, index_type k) const
    {
        return static_cast<std::size_t>(k) * rows + r;
    }
};

template <typename T>
class BatchEll {
public:
    BatchEll() = default;

    /// Builds the batch from a shared column-major pattern; values are zero.
    BatchEll(size_type num_batch, index_type rows, index_type nnz_per_row,
             std::vector<index_type> col_idxs)
        : num_batch_(num_batch),
          rows_(rows),
          nnz_per_row_(nnz_per_row),
          col_idxs_(std::move(col_idxs))
    {
        BSIS_ENSURE_ARG(num_batch >= 0, "negative batch count");
        BSIS_ENSURE_DIMS(static_cast<size_type>(col_idxs_.size()) ==
                             static_cast<size_type>(rows) * nnz_per_row,
                         "col_idxs size must be rows * nnz_per_row");
        for (auto c : col_idxs_) {
            BSIS_ENSURE_DIMS(c == ell_padding || (c >= 0 && c < rows),
                             "column index out of range");
        }
        values_.assign(static_cast<std::size_t>(num_batch) * rows *
                           nnz_per_row,
                       T{});
    }

    size_type num_batch() const { return num_batch_; }
    index_type rows() const { return rows_; }
    index_type nnz_per_row() const { return nnz_per_row_; }
    index_type stored_per_entry() const { return rows_ * nnz_per_row_; }

    const std::vector<index_type>& col_idxs() const { return col_idxs_; }

    /// Bytes of storage: values + shared pattern (Fig. 3 accounting).
    size_type storage_bytes() const
    {
        return static_cast<size_type>(values_.size() * sizeof(T) +
                                      col_idxs_.size() * sizeof(index_type));
    }

    EllView<T> entry(size_type b) const
    {
        BSIS_ASSERT(b >= 0 && b < num_batch_);
        return {rows_, nnz_per_row_, col_idxs_.data(),
                values_.data() +
                    static_cast<std::size_t>(b) * stored_per_entry()};
    }

    T* values(size_type b)
    {
        BSIS_ASSERT(b >= 0 && b < num_batch_);
        return values_.data() +
               static_cast<std::size_t>(b) * stored_per_entry();
    }

    const T* values(size_type b) const
    {
        BSIS_ASSERT(b >= 0 && b < num_batch_);
        return values_.data() +
               static_cast<std::size_t>(b) * stored_per_entry();
    }

    T* data() { return values_.data(); }
    const T* data() const { return values_.data(); }

private:
    size_type num_batch_ = 0;
    index_type rows_ = 0;
    index_type nnz_per_row_ = 0;
    std::vector<index_type> col_idxs_;
    std::vector<T> values_;
};

/// y := A x for one ELL entry (thread-per-row traversal order).
template <typename T>
inline void spmv(EllView<T> a, ConstVecView<T> x, VecView<T> y)
{
    BSIS_ASSERT(y.len == a.rows);
    for (index_type r = 0; r < a.rows; ++r) {
        y[r] = T{};
    }
    // Slot-outer loop mirrors the coalesced GPU access pattern: all rows
    // advance through slot k together.
    for (index_type k = 0; k < a.nnz_per_row; ++k) {
        const index_type* cols = a.col_idxs + a.at(0, k);
        const T* vals = a.values + a.at(0, k);
        for (index_type r = 0; r < a.rows; ++r) {
            const index_type c = cols[r];
            if (c != ell_padding) {
                y[r] += vals[r] * x[c];
            }
        }
    }
}

/// y := A^T x for one ELL entry (scatter form; used by BiCG).
template <typename T>
inline void spmv_transpose(EllView<T> a, ConstVecView<T> x, VecView<T> y)
{
    BSIS_ASSERT(x.len == a.rows);
    for (index_type c = 0; c < y.len; ++c) {
        y[c] = T{};
    }
    for (index_type k = 0; k < a.nnz_per_row; ++k) {
        for (index_type r = 0; r < a.rows; ++r) {
            const index_type c = a.col_idxs[a.at(r, k)];
            if (c != ell_padding) {
                y[c] += a.values[a.at(r, k)] * x[r];
            }
        }
    }
}

/// Extracts the diagonal of one ELL entry (scalar-Jacobi setup).
template <typename T>
inline void extract_diagonal(EllView<T> a, VecView<T> diag)
{
    BSIS_ASSERT(diag.len == a.rows);
    for (index_type r = 0; r < a.rows; ++r) {
        diag[r] = T{};
        for (index_type k = 0; k < a.nnz_per_row; ++k) {
            if (a.col_idxs[a.at(r, k)] == r) {
                diag[r] = a.values[a.at(r, k)];
            }
        }
    }
}

}  // namespace bsis
